"""Whole-loop macro-kernel execution of translated SIMD fragments.

The translator emits fragments in a small regular language (see
``repro/core/translate/translator.py``); the macro engine executes
their hot shapes whole instead of per block.  Recognition and lowering
live in the shared codegen layer (:mod:`repro.codegen`): the lift pass
(:func:`repro.codegen.lift.lift_fragment`) raises a fragment into
typed IR once, and the numpy backend lowers the recognized regions
into ``exec()``-compiled whole-array kernels.  This module owns the
*runtime* shapes the machine dispatches on — what to check before
engaging, how to replay timing, what architectural state the epilogue
must leave — and assembles them into the fragment plan:

* :class:`FragmentLoopShape` — the canonical counted do-while loop,
  run for all remaining trips as one ``(trips, width)`` kernel
  (PR 5's original shape, now IR-driven).
* :class:`FragmentChainShape` — a whole fragment of alternating
  scalar segments and counted loops with statically known trips
  (the paper's fissioned permutation loops, §3, land here), run as a
  single kernel per fragment invocation.
* :class:`FragmentNestShape` — a nested counted loop (outer
  ``add``/``cmp``/``blt`` around an induction reset plus one inner
  vector loop), run whole across the remaining outer trips.

Timing stays bit-identical through the same two batched APIs as
before: whole-loop d-cache streams replayed by
:meth:`~repro.memory.cache.Cache.access_stream` (trip-major, program
order — the exact sequence the per-block path would have issued), and
pipeline hazards/branch prediction/statistics folded by
:meth:`~repro.pipeline.core.PipelineModel.account_block` /
:meth:`~repro.pipeline.core.PipelineModel.account_loop` over the very
``BlockTiming`` objects the per-block path uses.

Fallback contract: anything outside the recognized shapes produces no
plan entry, and runtime conditions (misaligned or out-of-range slabs,
read-only overlap, induction state out of range, fewer than two
remaining trips, step-limit proximity, an attached tracer or in-flight
translation, which disable fused fragments wholesale in
``Machine._run_fragment``) return control to the per-block path, which
raises the identical errors at the identical instruction.  The
four-way differential suite pins all of this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codegen.backend import get_backend
from repro.codegen.ir import ChainNode, LoopNode
from repro.codegen.lift import lift_fragment, static_loop_trips
from repro.observability import telemetry as _telemetry

#: Values the induction variable may reach without 32-bit wrap concerns.
_INT31 = 1 << 31

#: Minimum remaining trips worth the whole-array setup cost.  Below it
#: the per-block path is used; both are bit-identical, so this is a pure
#: speed knob.
MIN_MACRO_TRIPS = 2


def _site_arrays(sites, width: int):
    """(strides, nbytes, writes, load_cols) numpy arrays for loop sites."""
    strides = [esz * width for (_sym, esz, _w) in sites]
    return (np.asarray(strides, dtype=np.int64),
            np.asarray(strides, dtype=np.int64),  # one vector/site
            np.asarray([w for (_s, _e, w) in sites], dtype=bool),
            np.asarray([i for i, (_s, _e, w) in enumerate(sites) if not w],
                       dtype=np.intp))


class FragmentLoopShape:
    """One recognized counted fragment loop, executable whole.

    Instances are built by :func:`build_fragment_plan` per back-branch
    and keyed by the loop-head pc in the fragment plan.  ``trips``
    computes the remaining trip count from live register state (None
    when the macro path must not engage); ``run`` executes and accounts
    all of them at once, returning False — with no state touched — when
    a runtime precondition fails and the per-block path must take over.
    """

    __slots__ = ("head", "branch_pc", "blen", "width", "induction", "trip",
                 "sites", "kernel", "timing",
                 "_bases_stride", "_nbytes", "_writes", "_load_cols")

    def __init__(self, node: LoopNode, kernel) -> None:
        self.head = node.head
        self.branch_pc = node.branch_pc
        self.blen = node.blen
        self.width = node.width
        self.induction = node.induction
        self.trip = node.trip
        self.sites = node.sites
        self.kernel = kernel
        self.timing = None  # attached by build_fragment_plan
        (self._bases_stride, self._nbytes, self._writes,
         self._load_cols) = _site_arrays(node.sites, node.width)

    def trips(self, state) -> Optional[int]:
        """Remaining trip count from live state, or None to fall back."""
        i0 = state.regs.ints[self.induction]
        trip = self.trip
        width = self.width
        if i0 < 0 or trip < 0:
            return None
        n = ((trip - i0 + width - 1) // width) if trip > i0 else 1
        if n < MIN_MACRO_TRIPS or i0 + n * width >= _INT31:
            return None
        return n

    def run(self, state, pipeline, trips: int) -> bool:
        """Execute and account *trips* loop iterations in one shot.

        Returns False — before touching any architectural or timing
        state — when a slab fails the runtime preconditions (vector
        alignment, bounds, read-only overlap); the caller then resumes
        the per-block path, which raises the identical error at the
        identical instruction if one is actually due.
        """
        regs = state.regs
        memory = state.memory
        symbols = state.symbols
        i0 = regs.ints[self.induction]
        width = self.width
        span = trips * width
        bases = []
        for sym, esz, is_store in self.sites:
            base = symbols.address_of(sym) + i0 * esz
            nbytes = span * esz
            if base % (esz * width) or base < 0 or base + nbytes > memory.size:
                return False
            if is_store and memory.overlaps_read_only(base, nbytes):
                return False
            bases.append(base)

        self.kernel(memory, state.vregs, regs, bases, trips)

        # Timing: replay the loop's whole d-cache stream (trip-major,
        # program order — identical to the per-block sequence; fragments
        # never touch the i-cache), then fold the pipeline hazards and
        # the taken/.../taken/not-taken branch pattern.
        n_sites = len(bases)
        if n_sites:
            addr_mat = (np.asarray(bases, dtype=np.int64)[None, :]
                        + np.arange(trips, dtype=np.int64)[:, None]
                        * self._bases_stride[None, :])
            lats = pipeline.dcache.access_stream(
                addr_mat.reshape(-1),
                np.tile(self._nbytes, trips),
                np.tile(self._writes, trips))
            load_lats = lats.reshape(trips, n_sites)[:, self._load_cols] \
                .reshape(-1).tolist()
        else:
            load_lats = []
        pipeline.account_loop(self.timing, trips, load_lats)

        # Architectural epilogue: final induction value, cmp flags,
        # fall-through pc, retire count — what the last trip leaves.
        i_final = i0 + trips * width
        regs.ints[self.induction] = i_final
        regs.set_flags(i_final, self.trip)
        state.pc = self.branch_pc + 1
        state.instructions_retired += trips * self.blen
        return True


class FragmentChainShape:
    """A whole chain-shaped fragment, executable as one kernel.

    Registered at pc 0 of the plan: one invocation runs every scalar
    segment and every loop region of the fragment (all trip counts are
    static — the chain lift required each induction to be reset by a
    ``mov rI, #0`` in the chain itself), then replays the fragment's
    complete timing as a static schedule of block steps (segment +
    first loop iteration + back-branch, and the trailing segment) and
    loop steps (iterations 2..n via ``access_stream`` +
    ``account_loop``) over the same ``BlockTiming`` objects the
    per-block path uses.
    """

    __slots__ = ("blen", "width", "kernel", "steps", "sites", "count",
                 "_flags_pair")

    def __init__(self, chain: ChainNode, kernel, steps, count: int,
                 flags_pair: Tuple[int, int]) -> None:
        self.blen = chain.total_retired
        self.width = chain.width
        self.kernel = kernel
        self.steps = steps
        self.sites = chain.sites
        self.count = count  # fragment instruction count (exit pc)
        self._flags_pair = flags_pair

    def trips(self, state) -> Optional[int]:
        """One whole-fragment invocation; trip counts are static."""
        return 1

    def run(self, state, pipeline, trips: int) -> bool:
        regs = state.regs
        memory = state.memory
        symbols = state.symbols
        width = self.width
        bases: List[int] = []
        for site in self.sites:
            base = symbols.address_of(site.sym) + site.offset * site.esz
            nbytes = site.count_elems * site.esz
            if site.scalar:
                if base < 0 or base + nbytes > memory.size:
                    return False
            else:
                if base % (site.esz * width) or base < 0 \
                        or base + nbytes > memory.size:
                    return False
            if site.is_store and memory.overlaps_read_only(base, nbytes):
                return False
            bases.append(base)

        self.kernel(memory, state.vregs, regs, bases)

        account_block = pipeline.account_block
        account_loop = pipeline.account_loop
        access_stream = pipeline.dcache.access_stream
        for step in self.steps:
            if step[0] == 0:
                _, timing, ids, taken = step
                account_block(timing, [bases[s] for s in ids], taken)
            else:
                (_, timing, ids, ltrips, strides, nbytes, writes,
                 load_cols) = step
                n_sites = len(ids)
                if n_sites:
                    b = np.asarray([bases[s] for s in ids], dtype=np.int64)
                    addr_mat = (b[None, :]
                                + np.arange(1, ltrips + 1, dtype=np.int64)
                                [:, None] * strides[None, :])
                    lats = access_stream(addr_mat.reshape(-1),
                                         np.tile(nbytes, ltrips),
                                         np.tile(writes, ltrips))
                    load_lats = lats.reshape(ltrips, n_sites)[:, load_cols] \
                        .reshape(-1).tolist()
                else:
                    load_lats = []
                account_loop(timing, ltrips, load_lats)

        # The kernel set every induction final; the last flag-setting
        # instruction of a chain is the last loop's cmp.
        regs.set_flags(*self._flags_pair)
        state.pc = self.count
        state.instructions_retired += self.blen
        return True


class FragmentNestShape:
    """A nested counted loop, run whole across remaining outer trips.

    The outer region's body is an induction reset plus one canonical
    inner loop whose trip count is static; each outer trip runs the
    inner loop's whole-array kernel once and replays the outer trip's
    timing as entry block (reset + inner iteration 1 + inner branch),
    inner loop iterations 2..n, and tail block (outer
    ``add``/``cmp``/``blt``).
    """

    __slots__ = ("head", "branch_pc", "blen", "width", "node", "inner",
                 "inner_trips", "kernel", "entry_timing", "loop_timing",
                 "tail_timing",
                 "_bases_stride", "_nbytes", "_writes", "_load_cols")

    def __init__(self, node: LoopNode, inner_trips: int, kernel,
                 entry_timing, loop_timing, tail_timing) -> None:
        inner = node.inner
        self.head = node.head
        self.branch_pc = node.branch_pc
        self.width = node.width
        self.node = node
        self.inner = inner
        self.inner_trips = inner_trips
        self.kernel = kernel
        self.entry_timing = entry_timing
        self.loop_timing = loop_timing
        self.tail_timing = tail_timing
        #: retired instructions per outer trip: reset + whole inner
        #: loop + outer add/cmp/blt.
        self.blen = 1 + inner_trips * inner.blen + 3
        (self._bases_stride, self._nbytes, self._writes,
         self._load_cols) = _site_arrays(inner.sites, node.width)

    def trips(self, state) -> Optional[int]:
        """Remaining outer trips from live state, or None to fall back."""
        node = self.node
        j0 = state.regs.ints[node.induction]
        trip = node.trip
        step = node.step
        if j0 < 0 or trip < 0:
            return None
        n = ((trip - j0 + step - 1) // step) if trip > j0 else 1
        if j0 + n * step >= _INT31:
            return None
        return n

    def run(self, state, pipeline, trips: int) -> bool:
        regs = state.regs
        memory = state.memory
        symbols = state.symbols
        node = self.node
        inner = self.inner
        width = self.width
        inner_trips = self.inner_trips
        span = inner_trips * width
        bases: List[int] = []
        for sym, esz, is_store in inner.sites:
            base = symbols.address_of(sym)
            nbytes = span * esz
            if base % (esz * width) or base < 0 or base + nbytes > memory.size:
                return False
            if is_store and memory.overlaps_read_only(base, nbytes):
                return False
            bases.append(base)

        account_block = pipeline.account_block
        account_loop = pipeline.account_loop
        access_stream = pipeline.dcache.access_stream
        kernel = self.kernel
        entry_timing = self.entry_timing
        loop_timing = self.loop_timing
        tail_timing = self.tail_timing
        vregs = state.vregs
        n_sites = len(bases)
        ltrips = inner_trips - 1
        if n_sites and ltrips:
            addr_mat = (np.asarray(bases, dtype=np.int64)[None, :]
                        + np.arange(1, inner_trips, dtype=np.int64)[:, None]
                        * self._bases_stride[None, :])
            flat = addr_mat.reshape(-1)
            nbytes_stream = np.tile(self._nbytes, ltrips)
            writes_stream = np.tile(self._writes, ltrips)
        last = trips - 1
        no_mem: List[int] = []
        for t in range(trips):
            kernel(memory, vregs, regs, bases, inner_trips)
            account_block(entry_timing, bases, True)
            if ltrips:
                if n_sites:
                    lats = access_stream(flat, nbytes_stream, writes_stream)
                    load_lats = lats.reshape(ltrips, n_sites) \
                        [:, self._load_cols].reshape(-1).tolist()
                else:
                    load_lats = []
                account_loop(loop_timing, ltrips, load_lats)
            account_block(tail_timing, no_mem, t != last)

        # Epilogue: inner induction rests at its final value, outer
        # induction and flags from the last outer cmp.
        regs.ints[inner.induction] = inner_trips * width
        j_final = regs.ints[node.induction] + trips * node.step
        regs.ints[node.induction] = j_final
        regs.set_flags(j_final, node.trip)
        state.pc = self.branch_pc + 1
        state.instructions_retired += trips * self.blen
        return True


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def _reject(reason: str):
    _telemetry.get().count("macro.plan.rejected." + reason)
    return None


def _loop_block_timing(node: LoopNode, blocks, pipeline, sb_backend,
                       label: str):
    """The validated loop-body ``BlockTiming`` for *node*, with its
    compiled whole-loop specialization attached, or None on mismatch."""
    timing = blocks.block_at(node.head).timing
    if (timing.fetch_mode != 0 or timing.term != 1
            or timing.count != node.blen
            or len(timing.rows) != node.blen):
        # superblock discovery disagreed: stay per-block
        return _reject("timing-mismatch")
    if timing.loop_compiled is None:
        timing.loop_compiled = sb_backend.lower_loop_timing(
            timing, pipeline, label, node.head)
    return timing


def _mem_rows(timing) -> int:
    return sum(1 for row in timing.rows if row[6])


def _build_chain_shape(chain: ChainNode, fragment, blocks, pipeline,
                       np_backend, sb_backend,
                       label: str) -> Optional[FragmentChainShape]:
    """Lower one chain and build its static timing schedule, or None."""
    lowered = np_backend.lower_chain(chain, label)
    if lowered is None:
        return _reject("unsupported-lowering")
    count = len(fragment.instructions)
    trips = {ri: (n, sb) for (ri, n, sb) in chain.trips}
    steps: List[tuple] = []
    pending: List[int] = []  # scalar store site ids in segment order
    pos = 0
    last_loop = None
    last_trips = 1
    for ri, region in enumerate(chain.regions):
        if not isinstance(region, LoopNode):
            if region.site is not None:
                pending.append(region.site)
            continue
        nloop, site_base = trips[ri]
        loop_ids = tuple(range(site_base, site_base + len(region.sites)))
        entry_timing = blocks.block_at(pos).timing
        expected = (region.head - pos) + region.blen
        mem_ids = tuple(pending) + loop_ids
        if (entry_timing.fetch_mode != 0 or entry_timing.term != 1
                or entry_timing.count != expected
                or _mem_rows(entry_timing) != len(mem_ids)):
            return _reject("chain-block-mismatch")
        steps.append((0, entry_timing, mem_ids, nloop > 1))
        if nloop > 1:
            loop_timing = _loop_block_timing(region, blocks, pipeline,
                                             sb_backend, label)
            if loop_timing is None:
                return None  # _loop_block_timing counted the rejection
            strides, nbytes, writes, load_cols = _site_arrays(
                region.sites, chain.width)
            steps.append((1, loop_timing, loop_ids, nloop - 1,
                          strides, nbytes, writes, load_cols))
        pending = []
        pos = region.branch_pc + 1
        last_loop = region
        last_trips = nloop
    if pos < count:
        tail_timing = blocks.block_at(pos).timing
        if (tail_timing.fetch_mode != 0 or tail_timing.term != 0
                or tail_timing.count != count - pos
                or _mem_rows(tail_timing) != len(pending)):
            return _reject("chain-block-mismatch")
        steps.append((0, tail_timing, tuple(pending), None))
    flags_pair = (last_trips * chain.width, last_loop.trip)
    return FragmentChainShape(chain, lowered.kernel, tuple(steps), count,
                              flags_pair)


def _build_nest_shape(node: LoopNode, blocks, pipeline, np_backend,
                      sb_backend,
                      label: str) -> Optional[FragmentNestShape]:
    """Lower one nested loop and validate its three blocks, or None."""
    inner = node.inner
    inner_trips = static_loop_trips(inner)
    if inner_trips is None or inner_trips < 2:
        return _reject("nested-inner-trips")
    lowered = np_backend.lower_loop(inner, label)
    if lowered is None:
        return _reject("unsupported-lowering")
    entry_timing = blocks.block_at(node.head).timing
    expected = 1 + inner.blen  # induction reset + first inner iteration
    if (entry_timing.fetch_mode != 0 or entry_timing.term != 1
            or entry_timing.count != expected
            or len(entry_timing.rows) != expected
            or _mem_rows(entry_timing) != len(inner.sites)):
        return _reject("timing-mismatch")
    loop_timing = _loop_block_timing(inner, blocks, pipeline, sb_backend,
                                     label)
    if loop_timing is None:
        return None
    tail_timing = blocks.block_at(inner.branch_pc + 1).timing
    if (tail_timing.fetch_mode != 0 or tail_timing.term != 1
            or tail_timing.count != 3 or len(tail_timing.rows) != 3
            or _mem_rows(tail_timing) != 0):
        return _reject("timing-mismatch")
    return FragmentNestShape(node, inner_trips, lowered.kernel,
                             entry_timing, loop_timing, tail_timing)


def build_fragment_plan(fragment, blocks, pipeline,
                        width: int) -> Dict[int, object]:
    """Map plan pc -> runtime shape for every recognizable region.

    Keys are loop-head pcs for :class:`FragmentLoopShape` /
    :class:`FragmentNestShape`, plus pc 0 for a whole-fragment
    :class:`FragmentChainShape`.  *blocks* is the fragment's
    :class:`~repro.interp.turbo.SuperblockTable`: every shape reuses —
    and attaches compiled whole-loop timings to — the superblocks
    discovered at its pcs, guaranteeing the macro path and the
    per-block path account the very same rows.
    """
    tel = _telemetry.get()
    label = getattr(fragment, "name", "fragment")
    np_backend = get_backend("numpy")
    sb_backend = get_backend("superblock")
    ir = lift_fragment(fragment, width)
    plans: Dict[int, object] = {}
    for head in sorted(ir.loops):
        node = ir.loops[head]
        if node.inner is not None:
            shape = _build_nest_shape(node, blocks, pipeline, np_backend,
                                      sb_backend, label)
            if shape is not None:
                plans[head] = shape
                tel.count("macro.plan.recognized")
            continue
        lowered = np_backend.lower_loop(node, label)
        if lowered is None:
            _reject("unsupported-lowering")
            continue
        timing = _loop_block_timing(node, blocks, pipeline, sb_backend,
                                    label)
        if timing is None:
            continue
        shape = FragmentLoopShape(node, lowered.kernel)
        shape.timing = timing
        plans[head] = shape
        tel.count("macro.plan.recognized")
    if ir.chain is not None:
        chain_shape = _build_chain_shape(ir.chain, fragment, blocks,
                                         pipeline, np_backend, sb_backend,
                                         label)
        if chain_shape is not None:
            plans[0] = chain_shape
            tel.count("macro.plan.recognized")
    return plans
