"""The instruction executor: functional semantics for both ISAs.

The executor advances :class:`~repro.interp.state.MachineState` one
instruction at a time and emits a
:class:`~repro.interp.events.RetireEvent` per instruction.  It contains
no timing — the pipeline model and the dynamic translator both consume
the retire-event stream.

Call semantics follow ARM: ``bl``/``blo`` write the return address into
the link register and ``ret`` jumps back through it.  There is no
hardware call stack; outlined Liquid SIMD functions are leaf functions,
so single-depth linkage is sufficient (and is what the paper assumes —
a nested call inside an outlined region aborts translation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro import arith
from repro.interp.errors import ExecutionError
from repro.interp.events import RetireEvent
from repro.interp.state import MachineState
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import ELEM_SIZES, LOAD_ELEM, OPCODES, STORE_ELEM, InstrClass
from repro.isa.registers import LINK_REGISTER, is_float_reg, is_int_reg, is_vector_reg
from repro.memory.alignment import vector_alignment_ok
from repro.simd.permutations import PermPattern
from repro.simd.vector_ops import vector_binary, vector_reduce, vector_unary

__all__ = ["ExecutionError", "Executor", "FastExecutor", "TurboExecutor",
           "make_executor", "ENGINES"]

Number = Union[int, float]


_COND = {
    "eq": lambda f: f["eq"],
    "ne": lambda f: not f["eq"],
    "lt": lambda f: f["lt"],
    "le": lambda f: f["lt"] or f["eq"],
    "gt": lambda f: f["gt"],
    "ge": lambda f: f["gt"] or f["eq"],
}

_FLOAT_UNARY = {"fneg", "fabs"}
_FLOAT_BITWISE = {"fand", "forr"}
_VEC_BINARY = {"vadd", "vsub", "vmul", "vand", "vorr", "veor", "vbic",
               "vshl", "vshr", "vmin", "vmax", "vqadd", "vqsub", "vmask",
               "vabd"}
_VEC_UNARY = {"vabs", "vneg"}
_VEC_PERM = {"vbfly", "vrev", "vrot"}
_VEC_RED = {"vredsum", "vredmin", "vredmax"}


class Executor:
    """Executes instructions against a :class:`MachineState`.

    This is the *reference* engine: it re-derives opcode metadata and
    operand kinds on every step, which keeps the semantics maximally
    explicit.  The pre-decoded fast engine (:class:`FastExecutor`) is
    validated bit-for-bit against it — see ``docs/execution-engines.md``.
    """

    #: Reference engine has no pre-decoded timing metadata or handler
    #: tables; hot loops test these for None to pick the dispatch path.
    metas = None
    handlers = None

    def __init__(self, state: MachineState) -> None:
        self.state = state

    # -- operand helpers ------------------------------------------------------

    def _value(self, operand) -> Number:
        state = self.state
        if isinstance(operand, Reg):
            if is_vector_reg(operand.name):
                raise ExecutionError(
                    f"scalar context cannot read vector register {operand.name}"
                )
            return state.regs.read(operand.name)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Sym):
            return state.symbols.address_of(operand.name)
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    def _vector(self, operand, width: int) -> List[Number]:
        state = self.state
        if isinstance(operand, Reg) and is_vector_reg(operand.name):
            return state.vregs.read(operand.name)
        if isinstance(operand, VImm):
            if len(operand.lanes) != width:
                raise ExecutionError(
                    f"vector immediate has {len(operand.lanes)} lanes, "
                    f"hardware width is {width}"
                )
            return list(operand.lanes)
        if isinstance(operand, (Imm,)):
            return [operand.value] * width
        raise ExecutionError(f"cannot evaluate vector operand {operand!r}")

    def effective_addr(self, mem: Mem, elem: str) -> int:
        """Element-scaled ``base + index * sizeof(elem)``."""
        state = self.state
        if isinstance(mem.base, Sym):
            base = state.symbols.address_of(mem.base.name)
        else:
            base = int(state.regs.read(mem.base.name))
        if mem.index is None:
            index = 0
        elif isinstance(mem.index, Imm):
            index = int(mem.index.value)
        else:
            index = int(state.regs.read(mem.index.name))
        return base + index * ELEM_SIZES[elem]

    # -- main entry ------------------------------------------------------------

    def execute(self, instr: Instruction) -> RetireEvent:
        """Execute one instruction at the current PC and return its event."""
        state = self.state
        pc = state.pc
        opcode = instr.opcode
        spec = OPCODES.get(opcode)
        if spec is None:
            raise ExecutionError(f"unknown opcode {opcode!r} at pc={pc}")
        cls = spec.cls

        value: Optional[Number] = None
        mem_addr: Optional[int] = None
        taken = False
        next_pc = pc + 1

        if cls is InstrClass.SYS:
            if opcode == "halt":
                state.halted = True
        elif cls is InstrClass.MOVE:
            value = self._exec_move(instr)
        elif cls in (InstrClass.ALU, InstrClass.MUL):
            value = self._exec_int_alu(instr)
        elif cls in (InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV):
            value = self._exec_float_alu(instr)
        elif cls is InstrClass.CMP:
            self._exec_cmp(instr)
        elif cls is InstrClass.LOAD and not spec.is_vector:
            value, mem_addr = self._exec_load(instr)
        elif cls is InstrClass.STORE and not spec.is_vector:
            value, mem_addr = self._exec_store(instr)
        elif cls is InstrClass.BRANCH:
            taken, next_pc = self._exec_branch(instr, pc)
        elif cls is InstrClass.CALL:
            state.regs.write(LINK_REGISTER, pc + 1)
            next_pc = state.program.label_index(instr.target)
            taken = True
        elif cls is InstrClass.RET:
            next_pc = int(state.regs.read(LINK_REGISTER))
            taken = True
        elif spec.is_vector:
            value, mem_addr = self._exec_vector(instr)
        else:  # pragma: no cover - table is exhaustive
            raise ExecutionError(f"unhandled opcode {opcode!r}")

        state.pc = next_pc
        state.instructions_retired += 1
        width = state.vregs.width if (spec.is_vector and state.vregs) else None
        return RetireEvent(pc=pc, instr=instr, value=value, mem_addr=mem_addr,
                           taken=taken, next_pc=next_pc, vector_width=width)

    # -- scalar semantics ----------------------------------------------------------

    def _exec_move(self, instr: Instruction) -> Optional[Number]:
        state = self.state
        opcode = instr.opcode
        base = "fmov" if opcode.startswith("fmov") else "mov"
        cond = opcode[len(base):]
        if cond:
            cond_fn = _COND.get(cond)
            if cond_fn is None:
                raise ExecutionError(
                    f"unknown condition suffix {cond!r} in opcode {opcode!r}"
                )
            if not cond_fn(state.regs.flags):
                return None
        if len(instr.srcs) != 1:
            raise ExecutionError(f"{opcode} expects one source")
        src = self._value(instr.srcs[0])
        dst = instr.dst
        if dst is None:
            raise ExecutionError(f"{opcode} needs a destination")
        if is_int_reg(dst.name):
            value = arith.wrap_int(int(src))
        else:
            value = arith.f32(float(src))
        state.regs.write(dst.name, value)
        return value

    def _exec_int_alu(self, instr: Instruction) -> Number:
        state = self.state
        if len(instr.srcs) != 2:
            raise ExecutionError(f"{instr.opcode} expects two sources")
        a = self._value(instr.srcs[0])
        b = self._value(instr.srcs[1])
        dst = instr.dst
        if dst is None:
            raise ExecutionError(f"{instr.opcode} needs a destination")
        if is_float_reg(dst.name):
            # Bitwise mask idioms on float data (paper's FFT example).
            if instr.opcode == "and":
                value = arith.float_bitwise("fand", float(a), _mask_bits(b))
            elif instr.opcode == "orr":
                if isinstance(b, float):
                    value = arith.float_or_floats(float(a), b)
                else:
                    value = arith.float_bitwise("forr", float(a), _mask_bits(b))
            else:
                raise ExecutionError(
                    f"integer op {instr.opcode!r} cannot target float register"
                )
        else:
            value = arith.int_op(instr.opcode, int(a), int(b), "i32")
        state.regs.write(dst.name, value)
        return value

    def _exec_float_alu(self, instr: Instruction) -> Number:
        state = self.state
        opcode = instr.opcode
        dst = instr.dst
        if dst is None:
            raise ExecutionError(f"{opcode} needs a destination")
        if opcode in _FLOAT_UNARY:
            if len(instr.srcs) != 1:
                raise ExecutionError(f"{opcode} expects one source")
            value = arith.float_op(opcode, float(self._value(instr.srcs[0])))
        elif opcode in _FLOAT_BITWISE:
            a = float(self._value(instr.srcs[0]))
            b = self._value(instr.srcs[1])
            op = "fand" if opcode == "fand" else "forr"
            if isinstance(b, float):
                value = (arith.float_and_floats(a, b) if op == "fand"
                         else arith.float_or_floats(a, b))
            else:
                value = arith.float_bitwise(op, a, int(b))
        else:
            if len(instr.srcs) != 2:
                raise ExecutionError(f"{opcode} expects two sources")
            a = float(self._value(instr.srcs[0]))
            b = float(self._value(instr.srcs[1]))
            value = arith.float_op(opcode, a, b)
        state.regs.write(dst.name, value)
        return value

    def _exec_cmp(self, instr: Instruction) -> None:
        if len(instr.srcs) != 2:
            raise ExecutionError(f"{instr.opcode} expects two operands")
        a = self._value(instr.srcs[0])
        b = self._value(instr.srcs[1])
        self.state.regs.set_flags(a, b)

    def _exec_load(self, instr: Instruction) -> Tuple[Number, int]:
        elem, signed = LOAD_ELEM[instr.opcode]
        addr = self.effective_addr(instr.mem, elem)
        value = self.state.memory.load(addr, elem, signed=signed)
        if elem == "f32":
            value = arith.f32(value)
        dst = instr.dst
        if is_float_reg(dst.name) and elem != "f32":
            # Integer loads into float registers move raw bit patterns
            # (mask arrays are loaded into integer registers in practice).
            raise ExecutionError("integer load cannot target a float register")
        self.state.regs.write(dst.name, value)
        return value, addr

    def _exec_store(self, instr: Instruction) -> Tuple[Number, int]:
        elem = STORE_ELEM[instr.opcode]
        addr = self.effective_addr(instr.mem, elem)
        value = self._value(instr.srcs[0])
        self.state.memory.store(addr, elem, value)
        return value, addr

    def _exec_branch(self, instr: Instruction, pc: int) -> Tuple[bool, int]:
        opcode = instr.opcode
        if opcode == "b":
            taken = True
        else:
            cond_fn = _COND.get(opcode[1:])
            if cond_fn is None:
                raise ExecutionError(
                    f"unknown branch condition {opcode[1:]!r} "
                    f"in opcode {opcode!r}"
                )
            taken = cond_fn(self.state.regs.flags)
        next_pc = self.state.program.label_index(instr.target) if taken else pc + 1
        return taken, next_pc

    # -- vector semantics --------------------------------------------------------------

    def _exec_vector(self, instr: Instruction) -> Tuple[Optional[Number], Optional[int]]:
        state = self.state
        if state.vregs is None:
            raise ExecutionError(
                f"vector instruction {instr.opcode} on a machine without a "
                "SIMD accelerator"
            )
        width = state.vregs.width
        opcode = instr.opcode
        elem = instr.elem
        if opcode == "vld":
            if elem is None:
                raise ExecutionError("vld requires an element type suffix")
            addr = self.effective_addr(instr.mem, elem)
            self._check_alignment(addr, elem, width)
            lanes = state.memory.load_vector(addr, elem, width)
            if elem == "f32":
                lanes = [arith.f32(v) for v in lanes]
            state.vregs.write(instr.dst.name, lanes, elem)
            return None, addr
        if opcode == "vst":
            if elem is None:
                raise ExecutionError("vst requires an element type suffix")
            addr = self.effective_addr(instr.mem, elem)
            self._check_alignment(addr, elem, width)
            lanes = self._vector(instr.srcs[0], width)
            state.memory.store_vector(addr, elem, lanes)
            return None, addr
        if opcode in _VEC_BINARY:
            a = self._vector(instr.srcs[0], width)
            b_operand = instr.srcs[1]
            if isinstance(b_operand, Imm):
                b: object = b_operand.value
            else:
                b = self._vector(b_operand, width)
            lanes = vector_binary(opcode, a, b, elem or "i32")
            state.vregs.write(instr.dst.name, lanes, elem)
            return None, None
        if opcode in _VEC_UNARY:
            a = self._vector(instr.srcs[0], width)
            lanes = vector_unary(opcode, a, elem or "i32")
            state.vregs.write(instr.dst.name, lanes, elem)
            return None, None
        if opcode in _VEC_PERM:
            return self._exec_perm(instr, width)
        if opcode in _VEC_RED:
            acc = self._value(instr.srcs[0])
            lanes = self._vector(instr.srcs[1], width)
            value = vector_reduce(opcode, acc, lanes, elem or "i32")
            state.regs.write(instr.dst.name, value)
            return value, None
        raise ExecutionError(f"unhandled vector opcode {opcode!r}")

    def _exec_perm(self, instr: Instruction, width: int):
        state = self.state
        opcode = instr.opcode
        src = self._vector(instr.srcs[0], width)
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            raise ExecutionError(f"{opcode} period must be an immediate")
        period = int(period_operand.value)
        if opcode == "vbfly":
            pattern = PermPattern("bfly", period)
        elif opcode == "vrev":
            pattern = PermPattern("rev", period)
        else:
            if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
                raise ExecutionError("vrot expects #period, #amount")
            pattern = PermPattern("rot", period, int(instr.srcs[2].value))
        if width % pattern.period != 0:
            raise ExecutionError(
                f"{pattern.name} does not tile hardware width {width}"
            )
        lanes = pattern.apply(src)
        state.vregs.write(instr.dst.name, lanes, instr.elem)
        return None, None

    def _check_alignment(self, addr: int, elem: str, width: int) -> None:
        if not vector_alignment_ok(addr, ELEM_SIZES[elem], width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )


def _mask_bits(value: Number) -> int:
    """Interpret *value* as a 32-bit mask pattern."""
    if isinstance(value, float):
        return arith.float_bits(value)
    return int(value) & 0xFFFFFFFF


class FastExecutor:
    """Table-driven engine: one pre-decoded handler call per step.

    The program is compiled once by :func:`repro.isa.decoded.predecode`
    into a dense handler table; each :meth:`execute` is then a single
    indexed call with operands, condition codes, and opcode dispatch all
    pre-bound.  Semantics are bit-identical to :class:`Executor` (the
    differential conformance suite enforces this); only the speed
    differs.

    Attributes:
        table: the :class:`~repro.isa.decoded.DecodedProgram` in use.
        metas: per-pc :class:`~repro.isa.decoded.InstrMeta` timing
            metadata, indexable by the pipeline model.
        handlers: per-pc executable closures; hot loops may index these
            directly (``handlers[pc](state)``) to skip the ``execute``
            call layer.
    """

    def __init__(self, state: MachineState, table=None) -> None:
        from repro.isa.decoded import predecode  # deferred: import cycle
        self.state = state
        if table is None:
            table = predecode(state.program)
        elif table.program is not state.program:
            raise ValueError("decoded table belongs to a different program")
        self.table = table
        self.metas = table.metas
        self.handlers = table.handlers

    def execute(self, instr: Instruction) -> RetireEvent:
        """Execute the instruction at the current PC (must equal *instr*)."""
        return self.handlers[self.state.pc](self.state)


class TurboExecutor(FastExecutor):
    """Superblock-fused engine: fast-engine tables plus block fusion.

    Per-instruction semantics are exactly :class:`FastExecutor`'s — the
    same pre-decoded handler table backs :meth:`execute`, so observers
    (tracing, the dynamic translator) see identical eager
    :class:`~repro.interp.events.RetireEvent` streams.  The win comes
    from the machine loop: when no observer needs per-instruction
    events, it executes whole superblocks through
    :class:`repro.interp.turbo.SuperblockTable` fused closures and
    accounts their timing with one batched
    :meth:`~repro.pipeline.core.PipelineModel.account_block` call (see
    ``docs/execution-engines.md``).

    Because its tables are pure functions of the program, the turbo
    engine memoizes the decode pass across :class:`Machine` runs
    (:func:`repro.interp.turbo.decoded_table_for`): re-running the same
    program object skips straight to the already-fused blocks, which is
    what makes short kernels profitable to fuse at all.  The fast
    engine deliberately keeps its per-run decode — it is the measured
    baseline.
    """

    def __init__(self, state: MachineState, table=None) -> None:
        if table is None:
            from repro.interp.turbo import decoded_table_for
            table = decoded_table_for(state.program)
        super().__init__(state, table)


#: engine name -> factory(state, table); tuple order is the doc order.
#: "macro" shares the turbo executor — it differs only in the machine
#: loop, which additionally runs recognized translated-fragment loops
#: through whole-trip-count kernels (repro/interp/macro.py).  Both
#: accelerated engines generate their closures through the shared
#: codegen layer (repro/codegen/, docs/codegen.md): the superblock
#: backend emits turbo's fused blocks and timing specializations, the
#: numpy backend emits macro's loop/chain/nest kernels.
_ENGINE_FACTORIES = {
    "fast": lambda state, table: FastExecutor(state, table),
    "turbo": lambda state, table: TurboExecutor(state, table),
    "macro": lambda state, table: TurboExecutor(state, table),
    "reference": lambda state, table: Executor(state),
}

#: Selectable execution engines ("fast" is the default production path).
ENGINES = tuple(_ENGINE_FACTORIES)


def make_executor(state: MachineState, engine: str = "fast", table=None):
    """Build the selected execution engine over *state*.

    ``table`` optionally supplies an already-predecoded program (fast
    and turbo engines only), so callers running many short fragments can
    amortize the decode pass.  Unknown engines are rejected with a
    message listing :data:`ENGINES` dynamically, mirroring the CLI's
    ``--engine`` validation.
    """
    factory = _ENGINE_FACTORIES.get(engine)
    if factory is None:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return factory(state, table)
