"""Round-trip serialization of RunResult and every nested stats type.

The ``to_dict``/``from_dict`` pair is the wire format of the persistent
run cache and of process-pool transport (docs/evaluation-runner.md), so
it must survive ``to_dict -> json.dumps -> json.loads -> from_dict``
bit-exactly: cycle counts, per-function call traces, translation
outcomes including microcode fragments, abort reasons, and final array
contents (floats included).
"""

import json

import pytest

from conftest import perm_kernel, run_program, sat_kernel, simple_kernel

from repro.core.scalarize import build_liquid_program
from repro.core.translate.translator import AbortReason, TranslationResult
from repro.core.translate.ucode_cache import MicrocodeCacheStats
from repro.isa.encoding import encode_program
from repro.memory.cache import CacheStats
from repro.pipeline.core import PipelineStats
from repro.system.metrics import FunctionStats, RunResult, arrays_equal


def roundtrip(obj):
    """to_dict -> JSON text -> from_dict, through the real wire format."""
    data = json.loads(json.dumps(obj.to_dict()))
    return type(obj).from_dict(data)


@pytest.fixture(scope="module")
def liquid_result() -> RunResult:
    """A rich run: translations, permutations, reductions, f32 arrays."""
    program = build_liquid_program(perm_kernel(calls=4))
    return run_program(program, width=8)


@pytest.fixture(scope="module")
def scalar_result() -> RunResult:
    """A run with no accelerator: ucode_cache is None, no translations."""
    program = build_liquid_program(simple_kernel(calls=3))
    return run_program(program)


class TestLeafStats:
    def test_cache_stats(self):
        stats = CacheStats(reads=10, writes=4, read_misses=2,
                           write_misses=1, writebacks=3)
        assert roundtrip(stats) == stats

    def test_pipeline_stats(self):
        stats = PipelineStats(instructions=100, simd_instructions=20,
                              data_stall_cycles=5, fetch_stall_cycles=7,
                              load_miss_cycles=30, branch_penalty_cycles=4,
                              branches=12, mispredicts=2)
        assert roundtrip(stats) == stats

    def test_ucode_cache_stats(self):
        stats = MicrocodeCacheStats(lookups=9, hits=6, not_ready=1,
                                    evictions=2)
        assert roundtrip(stats) == stats
        assert roundtrip(stats).misses == stats.misses

    def test_function_stats_without_translation(self):
        stats = FunctionStats("hot", calls=3, scalar_runs=1, simd_runs=2,
                              call_cycles=[10, 180, 900])
        back = roundtrip(stats)
        assert back == stats
        assert back.first_two_call_distance == 170

    def test_translation_result_abort(self):
        result = TranslationResult("hot", ok=False,
                                   reason=AbortReason.BUFFER_OVERFLOW,
                                   observed_static=70, detail="too big")
        back = roundtrip(result)
        assert back == result
        assert back.reason is AbortReason.BUFFER_OVERFLOW


class TestMicrocodeEntry:
    def test_fragment_round_trips_bit_exactly(self, liquid_result):
        entries = [t.entry for t in liquid_result.translations
                   if t.ok and t.entry is not None]
        assert entries, "expected at least one successful translation"
        for entry in entries:
            back = roundtrip(entry)
            assert back.function == entry.function
            assert back.width == entry.width
            assert back.ready_cycle == entry.ready_cycle
            assert back.static_instructions == entry.static_instructions
            # Canonical bytes are the identity of a program; comments
            # (display-only, not encoded) may differ.
            assert encode_program(back.fragment) == \
                encode_program(entry.fragment)
            assert back.fragment.labels == entry.fragment.labels


class TestRunResult:
    def test_dict_is_json_stable(self, liquid_result):
        data = liquid_result.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_full_round_trip(self, liquid_result):
        back = roundtrip(liquid_result)
        assert back.program == liquid_result.program
        assert back.config == liquid_result.config
        assert back.cycles == liquid_result.cycles
        assert back.instructions == liquid_result.instructions
        assert back.pipeline == liquid_result.pipeline
        assert back.icache == liquid_result.icache
        assert back.dcache == liquid_result.dcache
        assert back.ucode_cache == liquid_result.ucode_cache
        assert set(back.functions) == set(liquid_result.functions)
        for name, stats in liquid_result.functions.items():
            assert back.functions[name].calls == stats.calls
            assert back.functions[name].call_cycles == stats.call_cycles
        assert arrays_equal(back, liquid_result)
        assert back.arrays == liquid_result.arrays

    def test_round_trip_twice_is_identity(self, liquid_result):
        once = liquid_result.to_dict()
        twice = roundtrip(liquid_result).to_dict()
        assert once == twice

    def test_derived_metrics_survive(self, liquid_result):
        back = roundtrip(liquid_result)
        assert back.cpi == liquid_result.cpi
        assert back.successful_translations == \
            liquid_result.successful_translations
        assert back.abort_counts == liquid_result.abort_counts

    def test_scalar_run_with_none_fields(self, scalar_result):
        assert scalar_result.ucode_cache is None
        back = roundtrip(scalar_result)
        assert back.ucode_cache is None
        assert back.translations == []
        assert back.cycles == scalar_result.cycles
        assert back.arrays == scalar_result.arrays

    def test_saturating_kernel_arrays_round_trip(self):
        result = run_program(build_liquid_program(sat_kernel()), width=8)
        back = roundtrip(result)
        assert back.arrays == result.arrays
        assert back.pipeline == result.pipeline
