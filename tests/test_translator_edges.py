"""Additional translator edge cases: widths, multi-loop, fragments."""

from repro.core.translate.translator import AbortReason
from repro.isa.instructions import Imm

from test_translator import translate, ucode_ops


class TestEffectiveWidth:
    def test_mixed_trip_loops_use_minimum_width(self):
        src = """
        .data A f32 32 = 1.0
        .data B f32 8 = 1.0
        fn:
            mov r0, #0
        L1:
            ldf f2, [A + r0]
            fadd f2, f2, f2
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, #32
            blt L1
            mov r0, #0
        L2:
            ldf f3, [B + r0]
            fadd f3, f3, f3
            stf f3, [B + r0]
            add r0, r0, #1
            cmp r0, #8
            blt L2
            ret
        """
        result, _ = translate(src, width=16)
        assert result.ok
        # One fragment-wide width: min(16-capped-by-32, 16-capped-by-8) = 8.
        assert result.entry.width == 8
        adds = [i for i in result.entry.fragment.instructions
                if i.opcode == "add"]
        assert all(a.srcs[1] == Imm(8) for a in adds)

    def test_odd_trip_uses_pow2_factor(self):
        src = """
        .data A f32 32 = 1.0
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, #24
            blt L
            ret
        """
        result, _ = translate(src, width=16)
        assert result.ok
        assert result.entry.width == 8  # largest power-of-two factor of 24

    def test_trip_two_is_minimum(self):
        src = """
        .data A f32 32 = 1.0
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, #2
            blt L
            ret
        """
        result, _ = translate(src, width=16)
        assert result.ok and result.entry.width == 2


class TestFragmentStructure:
    def test_fragment_has_entry_label(self):
        from test_translator import BASIC_LOOP
        result, _ = translate(BASIC_LOOP, width=4)
        fragment = result.entry.fragment
        assert fragment.entry == "u_entry"
        assert fragment.label_index("u_entry") == 0

    def test_two_loops_two_fragment_labels(self):
        src = """
        .data A f32 16 = 1.0
        fn:
            mov r0, #0
        L1:
            ldf f2, [A + r0]
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L1
            mov r0, #0
        L2:
            ldf f2, [A + r0]
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L2
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        fragment = result.entry.fragment
        blts = [i for i in fragment.instructions if i.opcode == "blt"]
        assert len(blts) == 2
        assert blts[0].target != blts[1].target
        # Each backward branch targets its own loop's first body entry.
        for blt in blts:
            target = fragment.label_index(blt.target)
            assert fragment.instructions[target].opcode == "vld"


class TestLegalityEdges:
    def test_store_base_register_form_passes_through_when_scalar(self):
        src = """
        .data OUT i32 4 = 0
        fn:
            mov r5, #3
            mov r0, #0
        L:
            add r0, r0, #1
            cmp r0, #8
            blt L
            stw r5, [OUT + #0]
            ret
        """
        result, _ = translate(src, width=4)
        # The loop has no vector work but is still a legal translation
        # (everything passes through; increment becomes +4).
        assert result.ok
        assert "stw" in ucode_ops(result)

    def test_unconditional_branch_aborts(self):
        src = """
        fn:
            mov r0, #0
        L:
            add r0, r0, #1
            cmp r0, #8
            blt L
            b skip
            nop
        skip:
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.MALFORMED_LOOP

    def test_loop_without_compare_aborts(self):
        src = """
        .data A f32 16 = 1.0
        fn:
            mov r0, #0
            mov r1, #16
        L:
            ldf f2, [A + r0]
            stf f2, [A + r0]
            add r0, r0, #1
            cmp r0, r1
            blt L
            ret
        """
        # Trip bound held in a register: the translator cannot size the
        # vectorized loop, so finalization rejects it.
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.MALFORMED_LOOP

    def test_second_use_of_induction_as_data_aborts(self):
        src = """
        .data A i32 16 = 1
        fn:
            mov r0, #0
        L:
            ldw r2, [A + r0]
            add r3, r2, r0
            stw r3, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        # `add r3, r2, r0` looks like rule 8 (induction + vector) but r2
        # has genuine data, not offsets: the translator treats it as an
        # offset vector and the store then scatter-misses the CAM.
        result, _ = translate(src, width=4)
        assert not result.ok


class TestUnsignedLoads:
    def test_unsigned_load_aborts(self):
        src = """
        .data A i8 16 = 200
        fn:
            mov r0, #0
        L:
            ldub r2, [A + r0]
            stb r2, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.ILLEGAL_OPCODE

    def test_unsigned_load_outside_loop_passes_through(self):
        src = """
        .data A i8 16 = 200
        .data OUT i32 1 = 0
        fn:
            mov r0, #0
        L:
            ldb r2, [A + r0]
            stb r2, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ldub r3, [A + #0]
            stw r3, [OUT + #0]
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "ldub" in ucode_ops(result)
