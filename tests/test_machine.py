"""Integration tests for the full machine: translation lifecycle, caching,
latency, blacklisting, and pre-translation."""

import pytest

from repro.core.scalarize import build_liquid_program
from repro.system.machine import Machine, MachineConfig, MachineError
from repro.system.metrics import arrays_equal, outlined_function_sizes

from conftest import all_variants, perm_kernel, run_program, sat_kernel, simple_kernel


class TestTranslationLifecycle:
    def test_first_call_runs_scalar(self):
        kernel = simple_kernel(calls=6)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=8)
        stats = result.functions["hot_fn"]
        assert stats.calls == 6
        assert stats.scalar_runs >= 1
        assert stats.simd_runs >= 1
        assert stats.scalar_runs + stats.simd_runs == 6

    def test_translation_succeeds_once(self):
        kernel = simple_kernel(calls=6)
        result = run_program(build_liquid_program(kernel), width=8)
        assert len(result.translations) == 1
        assert result.translations[0].ok
        assert result.successful_translations == 1

    def test_translation_latency_delays_availability(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel)
        fast = run_program(liquid, width=8,
                           translation_cycles_per_instruction=1)
        slow = run_program(liquid, width=8,
                           translation_cycles_per_instruction=100000)
        # With an absurdly slow translator every call runs scalar.
        assert slow.functions["hot_fn"].simd_runs == 0
        assert fast.functions["hot_fn"].simd_runs > 0
        assert slow.cycles > fast.cycles

    def test_translation_disabled_runs_scalar(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=8, translation_enabled=False)
        assert result.ucode_cache is None
        assert result.pipeline.simd_instructions == 0

    def test_no_accelerator_runs_scalar(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid)
        assert result.pipeline.simd_instructions == 0
        assert not result.translations

    def test_aborted_function_blacklisted(self):
        # bfly8 on a 4-wide machine aborts; only ONE attempt should be made.
        kernel = perm_kernel(calls=6, period=8)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=4)
        assert len(result.translations) == 1
        assert not result.translations[0].ok
        assert result.functions["hot_fn"].simd_runs == 0
        assert result.functions["hot_fn"].scalar_runs == 6

    def test_pretranslate_hits_from_first_call(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=8, pretranslate=True)
        assert result.functions["hot_fn"].scalar_runs == 0
        assert result.functions["hot_fn"].simd_runs == 4

    def test_pretranslate_preserves_results(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel)
        normal = run_program(liquid, width=8)
        pre = run_program(liquid, width=8, pretranslate=True)
        assert arrays_equal(normal, pre)

    def test_call_cycles_recorded(self):
        kernel = simple_kernel(calls=4)
        result = run_program(build_liquid_program(kernel), width=8)
        stats = result.functions["hot_fn"]
        assert len(stats.call_cycles) == 4
        assert stats.first_two_call_distance > 0

    def test_microcode_smaller_than_scalar_execution(self):
        kernel = simple_kernel(calls=4)
        result = run_program(build_liquid_program(kernel), width=8)
        entry = result.translations[0].entry
        assert entry.simd_instruction_count <= entry.static_instructions


class TestMarkingModes:
    def test_plain_bl_ignored_by_default(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel, mark_opcode="bl")
        result = run_program(liquid, width=8)
        assert not result.translations
        assert result.pipeline.simd_instructions == 0

    def test_plain_bl_mode_translates(self):
        kernel = simple_kernel(calls=4)
        liquid = build_liquid_program(kernel, mark_opcode="bl")
        result = run_program(liquid, width=8, attempt_plain_bl=True)
        assert result.successful_translations == 1
        assert result.functions["hot_fn"].simd_runs > 0

    def test_invalid_mark_opcode(self):
        with pytest.raises(ValueError):
            build_liquid_program(simple_kernel(), mark_opcode="b")


class TestUcodeCacheIntegration:
    def test_cache_stats_populated(self):
        kernel = simple_kernel(calls=6)
        result = run_program(build_liquid_program(kernel), width=8)
        assert result.ucode_cache.lookups == 6
        assert result.ucode_cache.hits == result.functions["hot_fn"].simd_runs

    def test_single_entry_cache_still_works_for_one_loop(self):
        kernel = simple_kernel(calls=6)
        result = run_program(build_liquid_program(kernel), width=8,
                             ucode_cache_entries=1)
        assert result.functions["hot_fn"].simd_runs > 0


class TestMachineGuards:
    def test_runaway_program_detected(self):
        from repro.isa.assembler import assemble
        program = assemble("main:\n    b main")
        with pytest.raises(MachineError):
            Machine(MachineConfig(max_steps=1000)).run(program)

    def test_execution_error_wrapped(self):
        from repro.isa.assembler import assemble
        # Store to a read-only array faults.
        program = assemble("""
        .rodata K i32 = 1
        main:
            mov r1, #5
            stw r1, [K + #0]
            halt
        """)
        with pytest.raises(MachineError):
            Machine(MachineConfig()).run(program)


class TestOutlinedSizes:
    def test_sizes_match_function_bodies(self):
        kernel = simple_kernel()
        liquid = build_liquid_program(kernel)
        sizes = outlined_function_sizes(liquid)
        assert set(sizes) == {"hot_fn"}
        # pre(1) + mov + 5 body + add/cmp/blt + post(1) + ret = 12
        assert sizes["hot_fn"] == 12


class TestCrossBinaryEquivalence:
    @pytest.mark.parametrize("width", [2, 4, 8, 16])
    def test_simple_kernel_all_paths_agree(self, width):
        kernel = simple_kernel(calls=3)
        baseline, liquid, native = all_variants(kernel, width=width)
        scalar_m = Machine(MachineConfig())
        accel_m = Machine(MachineConfig(
            accelerator=__import__("repro.simd.accelerator",
                                   fromlist=["config_for_width"]
                                   ).config_for_width(width)))
        r_base = scalar_m.run(baseline)
        r_liquid_scalar = scalar_m.run(liquid)   # Liquid binary, no SIMD HW
        r_liquid = accel_m.run(liquid)
        r_native = accel_m.run(native)
        assert arrays_equal(r_base, r_liquid_scalar)
        assert arrays_equal(r_base, r_liquid)
        assert arrays_equal(r_base, r_native)

    @pytest.mark.parametrize("width", [4, 8])
    def test_sat_kernel_agrees(self, width):
        kernel = sat_kernel(calls=3)
        baseline, liquid, _ = all_variants(kernel, width=width)
        r_base = run_program(baseline)
        r_liquid = run_program(liquid, width=width)
        assert arrays_equal(r_base, r_liquid)

    @pytest.mark.parametrize("mid_loop", [False, True])
    def test_perm_kernel_agrees(self, mid_loop):
        kernel = perm_kernel(calls=3, period=8, mid_loop=mid_loop)
        baseline, liquid, _ = all_variants(kernel, width=8)
        r_base = run_program(baseline)
        r_liquid = run_program(liquid, width=8)
        assert arrays_equal(r_base, r_liquid)
        assert r_liquid.successful_translations == 1


class TestVerificationOracle:
    def test_correct_translations_pass_verification(self):
        kernel = simple_kernel(calls=5)
        liquid = build_liquid_program(kernel)
        plain = run_program(liquid, width=8)
        verified = run_program(liquid, width=8, verify_translations=True)
        assert verified.successful_translations == 1
        assert arrays_equal(plain, verified)

    def test_verification_covers_fission_and_idioms(self):
        for factory in (lambda: perm_kernel(calls=4, period=4, mid_loop=True),
                        lambda: sat_kernel(calls=4)):
            liquid = build_liquid_program(factory())
            result = run_program(liquid, width=8, verify_translations=True)
            assert result.successful_translations == 1
            assert result.functions["hot_fn"].simd_runs > 0

    def test_failed_verification_discards_translation(self):
        # Force a mismatch by breaking the microcode after translation:
        # run with a monkeypatched verifier that always fails.
        kernel = simple_kernel(calls=5)
        liquid = build_liquid_program(kernel)
        machine = Machine(MachineConfig(
            accelerator=__import__("repro.simd.accelerator",
                                   fromlist=["config_for_width"]
                                   ).config_for_width(8),
            verify_translations=True))
        machine._verify_translation = lambda *a, **k: False
        result = machine.run(liquid)
        assert result.successful_translations == 0
        assert result.functions["hot_fn"].simd_runs == 0
        assert result.functions["hot_fn"].scalar_runs == 5
