"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.scalarize import (
    Kernel,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
)
from repro.isa.program import DataArray, Program
from repro.kernels.dsl import LoopBuilder
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import RunResult


@pytest.fixture(autouse=True)
def _isolated_run_cache(monkeypatch, tmp_path_factory):
    """Point the persistent run cache at a tmp dir for every test.

    The evaluation CLI caches simulation results under ``~/.cache`` by
    default; tests must never read stale entries from (or write into)
    the developer's real cache.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.mktemp("runcache")))


def run_program(program: Program, width=None, **config_kwargs) -> RunResult:
    """Run *program* on a machine with an optional accelerator width."""
    accelerator = config_for_width(width) if width else None
    config = MachineConfig(accelerator=accelerator, **config_kwargs)
    return Machine(config).run(program)


def simple_kernel(trip: int = 64, calls: int = 4, *, with_reduction: bool = True,
                  name: str = "simple") -> Kernel:
    """A small f32 kernel: out = x*2 + x, optional sum reduction."""
    builder = LoopBuilder("hot", trip=trip, elem="f32")
    x = builder.load("x")
    doubled = builder.mul(x, builder.imm(2.0))
    total = builder.add(doubled, x)
    builder.store("out", total)
    if with_reduction:
        builder.reduce("sum", total, acc="f1", init=0.0, store_to="acc")
    return Kernel(
        name=name,
        arrays=[
            DataArray("x", "f32", [float(i % 9) * 0.25 for i in range(trip)]),
            DataArray("out", "f32", [0.0] * trip),
            DataArray("acc", "f32", [0.0]),
        ],
        stages=[builder.build()],
        schedule=["hot"],
        repeats=calls,
    )


def perm_kernel(trip: int = 64, calls: int = 4, period: int = 8,
                *, mid_loop: bool = True) -> Kernel:
    """A kernel exercising permutations (load-fold or mid-loop fission)."""
    builder = LoopBuilder("hot", trip=trip, elem="f32")
    x = builder.load("x")
    if mid_loop:
        doubled = builder.mul(x, builder.imm(2.0))
        swapped = builder.bfly(doubled, period)     # fission point
        builder.store("out", builder.add(swapped, x))
    else:
        shuffled = builder.bfly(builder.load("x"), period, inplace=True)
        builder.store("out", builder.add(shuffled, x))
    return Kernel(
        name="perm",
        arrays=[
            DataArray("x", "f32", [float(i) for i in range(trip)]),
            DataArray("out", "f32", [0.0] * trip),
        ],
        stages=[builder.build()],
        schedule=["hot"],
        repeats=calls,
    )


def sat_kernel(trip: int = 32, calls: int = 4, elem: str = "i16") -> Kernel:
    """A kernel exercising the saturating-add idiom."""
    builder = LoopBuilder("hot", trip=trip, elem=elem)
    a = builder.load("a")
    b = builder.load("b")
    builder.store("o", builder.qadd(a, b))
    hi = 30000 if elem == "i16" else 120
    return Kernel(
        name="sat",
        arrays=[
            DataArray("a", elem, [(i * 977) % (2 * hi) - hi for i in range(trip)]),
            DataArray("b", elem, [(i * 661) % (2 * hi) - hi for i in range(trip)]),
            DataArray("o", elem, [0] * trip),
        ],
        stages=[builder.build()],
        schedule=["hot"],
        repeats=calls,
    )


def all_variants(kernel: Kernel, width: int = 8):
    """(baseline, liquid, native) programs for one kernel."""
    return (
        build_baseline_program(kernel),
        build_liquid_program(kernel),
        build_native_program(kernel, width=width),
    )


@pytest.fixture
def small_kernel() -> Kernel:
    return simple_kernel()
