"""Unit tests for the shared arithmetic semantics."""

import pytest

from repro import arith


class TestIntWrap:
    def test_wrap_i8(self):
        assert arith.wrap_int(127, "i8") == 127
        assert arith.wrap_int(128, "i8") == -128
        assert arith.wrap_int(-129, "i8") == 127
        assert arith.wrap_int(256, "i8") == 0

    def test_wrap_i16(self):
        assert arith.wrap_int(32767, "i16") == 32767
        assert arith.wrap_int(32768, "i16") == -32768

    def test_wrap_i32_default(self):
        assert arith.wrap_int(1 << 31) == -(1 << 31)


class TestIntOps:
    def test_basic_ops(self):
        assert arith.int_op("add", 2, 3) == 5
        assert arith.int_op("sub", 2, 3) == -1
        assert arith.int_op("rsb", 2, 3) == 1
        assert arith.int_op("mul", -4, 3) == -12
        assert arith.int_op("and", 0b1100, 0b1010) == 0b1000
        assert arith.int_op("orr", 0b1100, 0b1010) == 0b1110
        assert arith.int_op("eor", 0b1100, 0b1010) == 0b0110
        assert arith.int_op("bic", 0b1111, 0b0101) == 0b1010
        assert arith.int_op("min", 3, -2) == -2
        assert arith.int_op("max", 3, -2) == 3

    def test_shifts(self):
        assert arith.int_op("lsl", 1, 4) == 16
        assert arith.int_op("asr", -8, 1) == -4
        assert arith.int_op("lsr", -1, 28) == 0xF

    def test_mul_wraps_to_elem(self):
        assert arith.int_op("mul", 200, 2, "i8") == arith.wrap_int(400, "i8")

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            arith.int_op("xyz", 1, 2)


class TestSaturation:
    def test_qadd_bounds(self):
        assert arith.qadd(100, 100, "i8") == 127
        assert arith.qadd(-100, -100, "i8") == -128
        assert arith.qadd(10, 20, "i8") == 30

    def test_qsub_bounds(self):
        assert arith.qsub(-30000, 10000, "i16") == -32768
        assert arith.qsub(30000, -10000, "i16") == 32767
        assert arith.qsub(5, 3, "i16") == 2

    def test_saturate_helper(self):
        assert arith.saturate(999, "i8") == 127
        assert arith.saturate(-999, "i8") == -128
        assert arith.saturate(0, "i8") == 0

    def test_int_op_routes_saturating(self):
        assert arith.int_op("qadd", 120, 120, "i8") == 127


class TestFloat:
    def test_f32_rounding(self):
        assert arith.f32(0.1) != 0.1
        assert arith.f32(1.5) == 1.5

    def test_float_ops(self):
        assert arith.float_op("fadd", 1.0, 2.0) == 3.0
        assert arith.float_op("fsub", 1.0, 2.0) == -1.0
        assert arith.float_op("fmul", 1.5, 2.0) == 3.0
        assert arith.float_op("fdiv", 3.0, 2.0) == 1.5
        assert arith.float_op("fmin", -1.0, 2.0) == -1.0
        assert arith.float_op("fmax", -1.0, 2.0) == 2.0
        assert arith.float_op("fneg", 2.0) == -2.0
        assert arith.float_op("fabs", -2.0) == 2.0

    def test_float_op_rounds_to_binary32(self):
        # 1e10 + 1 is not representable at binary32 precision.
        assert arith.float_op("fadd", 1e10, 1.0) == arith.f32(1e10)

    def test_unknown_float_op(self):
        with pytest.raises(ValueError):
            arith.float_op("fxyz", 1.0, 2.0)


class TestFloatBits:
    def test_bit_roundtrip(self):
        for value in (0.0, 1.0, -1.5, 3.14159, 1e-20):
            assert arith.bits_float(arith.float_bits(value)) == arith.f32(value)

    def test_known_pattern(self):
        assert arith.float_bits(1.0) == 0x3F800000
        assert arith.bits_float(0x3F800000) == 1.0

    def test_mask_and_keeps_or_clears(self):
        assert arith.float_bitwise("fand", 1.5, 0xFFFFFFFF) == 1.5
        assert arith.float_bitwise("fand", 1.5, 0) == 0.0

    def test_or_combining_disjoint_lanes(self):
        kept = arith.float_bitwise("fand", 2.5, 0xFFFFFFFF)
        cleared = arith.float_bitwise("fand", 9.0, 0)
        assert arith.float_or_floats(kept, cleared) == 2.5

    def test_float_and_floats(self):
        assert arith.float_and_floats(1.5, 1.5) == 1.5
        assert arith.float_and_floats(1.5, 0.0) == 0.0

    def test_unknown_bitwise_op(self):
        with pytest.raises(ValueError):
            arith.float_bitwise("xor", 1.0, 0)
