"""Fault-injection and keying tests for the persistent fragment store.

The store must *never* make a run incorrect or crash it: truncated
files, garbage JSON, wrong format versions and racing writers all
degrade to a miss (``fragstore.corrupt`` / ``fragstore.race``) and the
caller falls back to retranslation — with no cycle-count or run-key
drift versus running without the store at all (the differential suite's
``test_store_does_not_drift_cycles`` covers the end-to-end half).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.scalarize import build_liquid_program
from repro.core.translate.fragstore import (
    FRAGSTORE_FORMAT_VERSION,
    FragmentStore,
    fragment_key,
    translator_config_fingerprint,
)
from repro.core.translate.translator import TranslatorConfig
from repro.evaluation.crosswidth import translate_at_width
from repro.evaluation.runcache import RunCache
from repro.kernels.suite import build_kernel
from repro.observability import telemetry
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig

CFG = TranslatorConfig(width=4)


def _store(tmp_path, **kwargs) -> FragmentStore:
    return FragmentStore(tmp_path / "fragments", **kwargs)


def _payload(tag="x") -> dict:
    return {"function": tag, "ok": True}


# ---------------------------------------------------------------------------
# Keying
# ---------------------------------------------------------------------------

def test_key_is_stable_and_sensitive():
    base = fragment_key(b"frag", 4, 8, CFG, function="f")
    assert base == fragment_key(b"frag", 4, 8, CFG, function="f")
    assert base != fragment_key(b"frag2", 4, 8, CFG, function="f")
    assert base != fragment_key(b"frag", 2, 8, CFG, function="f")
    assert base != fragment_key(b"frag", 4, 16, CFG, function="f")
    assert base != fragment_key(b"frag", 4, 8, CFG, function="g")
    assert base != fragment_key(b"frag", 4, 8, CFG, function="f",
                                format_version=FRAGSTORE_FORMAT_VERSION + 1)
    narrower = TranslatorConfig(
        width=4, supported_vector_ops=frozenset({"vld", "vst"}))
    assert base != fragment_key(b"frag", 4, 8, narrower, function="f")


def test_fingerprint_excludes_width():
    """One fingerprint describes a generation across hardware widths."""
    assert translator_config_fingerprint(TranslatorConfig(width=2)) == \
        translator_config_fingerprint(TranslatorConfig(width=16))


def test_round_trip(tmp_path):
    store = _store(tmp_path)
    key = fragment_key(b"frag", 4, 8, CFG)
    assert store.load(key) is None
    store.store(key, _payload())
    assert store.load(key) == _payload()
    assert store.stats.hits == 1 and store.stats.misses == 1
    assert store.entry_count() == 1 and store.size_bytes() > 0
    assert store.clear() == 1
    assert store.load(key) is None


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

def _stored_path(store: FragmentStore, key: str):
    store.store(key, _payload())
    return store.path_for(key)


@pytest.mark.parametrize("corruption", ["truncate", "garbage", "version"])
def test_corrupt_entries_fall_back_to_miss(tmp_path, corruption):
    store = _store(tmp_path)
    key = fragment_key(b"frag", 4, 8, CFG)
    path = _stored_path(store, key)
    if corruption == "truncate":
        path.write_text(path.read_text()[:10], encoding="utf-8")
    elif corruption == "garbage":
        path.write_text("{not json", encoding="utf-8")
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format_version"] = FRAGSTORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")

    tel = telemetry.enable()
    try:
        assert store.load(key) is None
        counters = dict(tel.to_dict()["counters"])
    finally:
        telemetry.disable()
    assert counters.get("fragstore.corrupt") == 1
    assert counters.get("fragstore.miss") == 1
    assert store.stats.corrupt == 1
    # The bad entry was deleted so the rewrite is a clean store.
    assert not path.exists()
    store.store(key, _payload())
    assert store.load(key) == _payload()


def test_concurrent_writer_loses_race_gracefully(tmp_path):
    """Two processes storing the same key: first wins, second is a race.

    Translation is deterministic, so the loser's payload is identical
    byte-for-byte and skipping the write is correct, not lossy.
    """
    a = _store(tmp_path)
    b = _store(tmp_path)
    key = fragment_key(b"frag", 4, 8, CFG)
    a.store(key, _payload())
    tel = telemetry.enable()
    try:
        b.store(key, _payload())
        counters = dict(tel.to_dict()["counters"])
    finally:
        telemetry.disable()
    assert counters.get("fragstore.race") == 1
    assert "fragstore.store" not in counters
    assert b.stats.races == 1 and b.stats.stores == 0
    assert a.load(key) == _payload()
    assert a.entry_count() == 1


# ---------------------------------------------------------------------------
# Eviction policies (the benchmarks/ ablation drives these at scale)
# ---------------------------------------------------------------------------

def _age(store: FragmentStore, key: str, mtime: float) -> None:
    os.utime(store.path_for(key), (mtime, mtime))


def test_fifo_eviction_drops_first_in(tmp_path):
    store = _store(tmp_path, max_entries=2, eviction="fifo")
    keys = [fragment_key(bytes([i]), 4, 8, CFG) for i in range(3)]
    store.store(keys[0], _payload("a"))
    _age(store, keys[0], 1000.0)
    store.store(keys[1], _payload("b"))
    _age(store, keys[1], 2000.0)
    # FIFO ignores use: loading the oldest entry must not save it.
    assert store.load(keys[0]) == _payload("a")
    _age(store, keys[0], 1000.0)  # fifo never refreshes mtime on load
    store.store(keys[2], _payload("c"))
    assert store.load(keys[0]) is None
    assert store.load(keys[1]) == _payload("b")
    assert store.load(keys[2]) == _payload("c")
    assert store.stats.evictions == 1


def test_lru_eviction_keeps_recently_used(tmp_path):
    store = _store(tmp_path, max_entries=2, eviction="lru")
    keys = [fragment_key(bytes([i]), 4, 8, CFG) for i in range(3)]
    store.store(keys[0], _payload("a"))
    _age(store, keys[0], 1000.0)
    store.store(keys[1], _payload("b"))
    _age(store, keys[1], 2000.0)
    # Touch the oldest: under LRU the load refreshes its recency.
    assert store.load(keys[0]) == _payload("a")
    store.store(keys[2], _payload("c"))
    assert store.load(keys[1]) is None  # victim is now the untouched one
    assert store.load(keys[0]) == _payload("a")
    assert store.load(keys[2]) == _payload("c")
    assert store.stats.evictions == 1


def test_eviction_validation():
    with pytest.raises(ValueError):
        FragmentStore("/tmp/x", eviction="random")
    with pytest.raises(ValueError):
        FragmentStore("/tmp/x", max_entries=0)


# ---------------------------------------------------------------------------
# Coexistence with the run cache
# ---------------------------------------------------------------------------

def test_store_is_invisible_to_run_cache(tmp_path):
    """Both caches share a root; neither sees the other's entries."""
    run_cache = RunCache(tmp_path)
    store = FragmentStore.default(tmp_path)
    assert store.root == tmp_path / "fragments"
    store.store(fragment_key(b"frag", 4, 8, CFG), _payload())
    assert run_cache.entry_count() == 0
    assert run_cache.clear() == 0
    assert store.entry_count() == 1


def test_corrupt_store_entry_does_not_change_outcome(tmp_path):
    """A corrupted translation entry degrades to a scout re-run whose
    results (and re-stored bytes) are identical to the cold path."""
    store = _store(tmp_path)
    program = build_liquid_program(build_kernel("FIR"))
    config = MachineConfig(accelerator=config_for_width(4), engine="fast")
    cold = translate_at_width(program, config, store)
    for path in store.entry_paths():
        path.write_text("{truncated", encoding="utf-8")
    recovered = translate_at_width(program, config, store)
    assert {fn: t.to_dict() for fn, t in recovered.items()} == \
        {fn: t.to_dict() for fn, t in cold.items()}
    assert store.stats.corrupt == len(cold)
