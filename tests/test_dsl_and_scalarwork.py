"""Tests for the loop-builder DSL and the scalar-work block factories."""

import pytest

from repro.core.scalarize.loop_ir import Kernel
from repro.isa.instructions import Imm, VImm
from repro.kernels.dsl import LoopBuilder
from repro.kernels.scalarwork import (
    app_ballast,
    chase_block,
    chase_indices,
    counting_block,
    float_data,
    int_data,
    recurrence_block,
    zeros,
)

from conftest import run_program
from repro.core.scalarize import build_baseline_program


class TestLoopBuilder:
    def test_load_allocates_matching_bank(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        assert x.reg.startswith("vf")
        b2 = LoopBuilder("L", trip=8, elem="i16")
        y = b2.load("A")
        assert y.reg.startswith("v") and not y.reg.startswith("vf")

    def test_allocation_starts_at_index_2(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        assert b.load("A").reg == "vf2"
        assert b.load("B").reg == "vf3"

    def test_out_of_registers(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        for _ in range(12):
            b.load("A")
        with pytest.raises(ValueError):
            b.load("A")

    def test_inplace_reuses_register(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        y = b.mul(x, b.imm(2.0), inplace=True)
        assert y.reg == x.reg

    def test_binary_emits_correct_opcode(self):
        b = LoopBuilder("L", trip=8, elem="i16")
        x = b.load("A")
        b.qadd(x, x)
        assert b._body[-1].opcode == "vqadd"
        b.shr(x, b.imm(2))
        assert b._body[-1].opcode == "vshr"
        assert b._body[-1].srcs[1] == Imm(2)

    def test_lanes_builds_vimm(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        assert b.lanes([0, -1]) == VImm((0, -1))

    def test_perm_operands(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        b.rot(x, 4, 3)
        instr = b._body[-1]
        assert instr.opcode == "vrot"
        assert instr.srcs[1:] == (Imm(4), Imm(3))

    def test_reduce_adds_pre_and_post_once(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        b.reduce("sum", x, acc="f1", init=0.0, store_to="out")
        b.reduce("sum", x, acc="f1")
        loop = b.build()
        assert len(loop.pre) == 1
        assert len(loop.post) == 1
        assert loop.pre[0].opcode == "fmov"

    def test_int_reduce_uses_int_moves(self):
        b = LoopBuilder("L", trip=8, elem="i16")
        x = b.load("A")
        b.reduce("max", x, acc="r1", init=-999, store_to="out")
        loop = b.build()
        assert loop.pre[0].opcode == "mov"
        assert loop.post[0].opcode == "stw"

    def test_build_validates(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        b.store("B", x)
        loop = b.build()
        assert loop.trip == 8
        assert len(loop.body) == 2


class TestDataGenerators:
    def test_float_data_deterministic(self):
        a = float_data("x", 32, seed=5)
        b = float_data("x", 32, seed=5)
        c = float_data("x", 32, seed=6)
        assert a.values == b.values
        assert a.values != c.values
        assert all(-1.0 <= v <= 1.0 for v in a.values)

    def test_int_data_in_range(self):
        arr = int_data("x", 100, seed=9, lo=-50, hi=50)
        assert all(-50 <= v < 50 for v in arr.values)
        assert arr.elem == "i16"

    def test_zeros(self):
        assert zeros("z", 4).values == [0.0] * 4
        assert zeros("z", 4, elem="i32").values == [0] * 4

    def test_chase_indices_form_one_cycle(self):
        arr = chase_indices("idx", 64, seed=3)
        seen = set()
        pos = 0
        for _ in range(64):
            assert pos not in seen
            seen.add(pos)
            pos = arr.values[pos]
        assert pos == 0  # closed cycle covering every slot
        assert len(seen) == 64

    def test_app_ballast_is_read_only(self):
        arr = app_ballast("tables", 1024)
        assert arr.read_only
        assert arr.size_bytes == 1024


class TestScalarBlocks:
    def _run_block(self, block, arrays=()):
        kernel = Kernel("k", arrays=list(arrays), stages=[block],
                        schedule=[block.name])
        program = build_baseline_program(kernel)
        return run_program(program)

    def test_recurrence_block_runs_serially(self):
        result = self._run_block(recurrence_block("w", 50))
        # 50 iterations x 5 instructions + setup; entirely scalar.
        assert result.instructions > 250
        assert result.pipeline.simd_instructions == 0

    def test_counting_block_is_cheap(self):
        result = self._run_block(counting_block("w", 4))
        assert result.instructions < 30

    def test_chase_block_misses_when_footprint_large(self):
        big = chase_indices("idx", 16384, seed=1)     # 64 KB > 16 KB cache
        result = self._run_block(chase_block("w", 2000, "idx"), arrays=[big])
        assert result.dcache.miss_rate > 0.5

    def test_chase_block_hits_when_footprint_small(self):
        small = chase_indices("idx", 512, seed=1)     # 2 KB: fits
        result = self._run_block(chase_block("w", 2000, "idx"), arrays=[small])
        assert result.dcache.miss_rate < 0.1

    def test_blocks_validate(self):
        for block in (recurrence_block("a", 5), counting_block("b", 5),
                      chase_block("c", 5, "idx")):
            block.validate()
