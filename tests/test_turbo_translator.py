"""Translator regression under the turbo engine.

The turbo engine materializes no :class:`RetireEvent` objects inside
fused superblocks — but the dynamic translator is an *observer*, so
while a translation is in flight the machine must drop back to the
per-instruction path and hand the translator exactly the eager event
stream the fast engine produces.  These tests pin that contract: an
outlined function whose translation starts and completes mid-run
observes an identical retire stream, and produces an identical
:class:`TranslationResult` (byte-identical microcode for successes,
identical :class:`AbortReason` and blacklist behaviour for failures),
whether events are materialized eagerly (``fast``) or lazily
(``turbo``).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scalarize import build_liquid_program
from repro.core.translate.translator import AbortReason, DynamicTranslator
from repro.isa.encoding import encode_program
from repro.kernels.suite import build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig


@pytest.fixture(scope="module")
def fft_program():
    return build_liquid_program(build_kernel("FFT"))


def _run_recording(monkeypatch, program, engine, **config_kwargs):
    """Run *program*; also capture what the translator observed.

    Returns ``(result, streams)`` where ``streams`` is a list of
    ``(function, [observed RetireEvent, ...])`` in begin() order.
    """
    streams = []

    class Recording(DynamicTranslator):
        def begin(self, target):
            self._observed = []
            streams.append((target, self._observed))
            return super().begin(target)

        def observe(self, event):
            self._observed.append(event)
            return super().observe(event)

    monkeypatch.setattr("repro.system.machine.DynamicTranslator", Recording)
    config = MachineConfig(engine=engine, **config_kwargs)
    result = Machine(config).run(program)
    return result, streams


def _assert_same_translations(fast_result, turbo_result):
    fast, turbo = fast_result.translations, turbo_result.translations
    assert len(fast) == len(turbo)
    for f, t in zip(fast, turbo):
        assert f.function == t.function
        assert f.ok == t.ok
        assert f.reason == t.reason
        if f.ok:
            assert t.entry is not None
            assert f.entry.width == t.entry.width
            assert encode_program(f.entry.fragment) == \
                encode_program(t.entry.fragment)


def test_observed_stream_identical(monkeypatch, fft_program):
    """Mid-run translation sees the same events eager or lazy."""
    fast_result, fast_streams = _run_recording(
        monkeypatch, fft_program, "fast", accelerator=config_for_width(8))
    turbo_result, turbo_streams = _run_recording(
        monkeypatch, fft_program, "turbo", accelerator=config_for_width(8))

    assert [fn for fn, _ in fast_streams] == [fn for fn, _ in turbo_streams]
    for (fn, fast_events), (_, turbo_events) in zip(fast_streams,
                                                    turbo_streams):
        assert len(fast_events) == len(turbo_events), \
            f"observation count diverges for {fn}"
        for i, (f_ev, t_ev) in enumerate(zip(fast_events, turbo_events)):
            assert f_ev == t_ev, \
                f"{fn}: observed event {i} diverges: {f_ev} != {t_ev}"
    assert fast_streams, "FFT must trigger at least one translation"

    _assert_same_translations(fast_result, turbo_result)
    assert fast_result.to_dict() == turbo_result.to_dict()
    ok = [t for t in fast_result.translations if t.ok]
    assert ok, "FFT stage must translate successfully"


def test_abort_path_identical(monkeypatch, fft_program):
    """No permutation repertoire: both engines abort identically and the
    blacklisted function keeps running in scalar form forever."""
    accel = dataclasses.replace(config_for_width(8), permutations=())
    fast_result, fast_streams = _run_recording(
        monkeypatch, fft_program, "fast", accelerator=accel)
    turbo_result, turbo_streams = _run_recording(
        monkeypatch, fft_program, "turbo", accelerator=accel)

    aborted = [t for t in fast_result.translations
               if t.reason is AbortReason.UNSUPPORTED_PATTERN]
    assert aborted, "removing permutations must abort the FFT stage"
    _assert_same_translations(fast_result, turbo_result)
    assert [fn for fn, _ in fast_streams] == [fn for fn, _ in turbo_streams]
    for (_, fast_events), (_, turbo_events) in zip(fast_streams,
                                                   turbo_streams):
        assert fast_events == turbo_events

    # Blacklist behaviour: the aborted function never runs as SIMD, and
    # it is only attempted once (one observation stream per function).
    for t in aborted:
        f_stats = fast_result.functions[t.function]
        t_stats = turbo_result.functions[t.function]
        assert t_stats.simd_runs == f_stats.simd_runs == 0
        assert t_stats.scalar_runs == f_stats.scalar_runs
        assert t_stats.calls == f_stats.calls
    attempts = [fn for fn, _ in turbo_streams]
    assert len(attempts) == len(set(attempts)), \
        "a blacklisted function must not be re-attempted"
    assert fast_result.to_dict() == turbo_result.to_dict()


def test_buffer_overflow_abort_identical(monkeypatch, fft_program):
    """A 2-entry microcode buffer overflows identically under turbo."""
    fast_result, _ = _run_recording(
        monkeypatch, fft_program, "fast",
        accelerator=config_for_width(8), max_ucode_instructions=2)
    turbo_result, _ = _run_recording(
        monkeypatch, fft_program, "turbo",
        accelerator=config_for_width(8), max_ucode_instructions=2)
    assert fast_result.translations
    assert all(not t.ok for t in fast_result.translations)
    assert {t.reason for t in fast_result.translations} == \
        {AbortReason.BUFFER_OVERFLOW}
    _assert_same_translations(fast_result, turbo_result)
    assert fast_result.to_dict() == turbo_result.to_dict()
