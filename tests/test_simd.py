"""Unit tests for vector semantics, permutations, and the accelerator."""

import pytest

from repro.simd.accelerator import (
    AcceleratorConfig,
    GENERATIONS,
    VectorRegisterFile,
    config_for_width,
)
from repro.simd.permutations import (
    STANDARD_PATTERNS,
    PermPattern,
    PermutationCAM,
)
from repro.simd.vector_ops import (
    SCALAR_TO_REDUCTION,
    SCALAR_TO_VECTOR,
    vector_binary,
    vector_reduce,
    vector_unary,
)


class TestVectorBinary:
    def test_int_elementwise(self):
        assert vector_binary("vadd", [1, 2], [10, 20], "i32") == [11, 22]
        assert vector_binary("vsub", [1, 2], [10, 20], "i32") == [-9, -18]
        assert vector_binary("vmul", [3, 4], [2, 2], "i16") == [6, 8]

    def test_broadcast_scalar(self):
        assert vector_binary("vadd", [1, 2, 3], 10, "i32") == [11, 12, 13]

    def test_lane_count_mismatch(self):
        with pytest.raises(ValueError):
            vector_binary("vadd", [1, 2], [1, 2, 3], "i32")

    def test_saturating_lanes(self):
        assert vector_binary("vqadd", [120, -120], [120, -120], "i8") == \
            [127, -128]
        assert vector_binary("vqsub", [30000], [-30000], "i16") == [32767]

    def test_narrow_wrap(self):
        assert vector_binary("vadd", [127], [1], "i8") == [-128]

    def test_vabd(self):
        assert vector_binary("vabd", [5, -5], [2, 2], "i16") == [3, 7]

    def test_vmask_int(self):
        assert vector_binary("vmask", [0xFF, 0xFF], [0x0F, 0], "i32") == \
            [0x0F, 0]

    def test_vmask_float_uses_bit_pattern(self):
        lanes = vector_binary("vmask", [1.5, 2.5], [0xFFFFFFFF, 0], "f32")
        assert lanes == [1.5, 0.0]

    def test_float_arithmetic(self):
        assert vector_binary("vadd", [1.0, 2.0], [0.5, 0.5], "f32") == \
            [1.5, 2.5]
        assert vector_binary("vmin", [1.0, -1.0], [0.0, 0.0], "f32") == \
            [0.0, -1.0]

    def test_float_or_combines_bits(self):
        kept = vector_binary("vmask", [3.5, 9.0], [0xFFFFFFFF, 0], "f32")
        other = vector_binary("vmask", [7.0, 4.5], [0, 0xFFFFFFFF], "f32")
        assert vector_binary("vorr", kept, other, "f32") == [3.5, 4.5]

    def test_shifts(self):
        assert vector_binary("vshl", [1, 2], 3, "i32") == [8, 16]
        assert vector_binary("vshr", [-8, 8], 1, "i32") == [-4, 4]

    def test_unknown_ops(self):
        with pytest.raises(ValueError):
            vector_binary("vwhat", [1], [1], "i32")
        with pytest.raises(ValueError):
            vector_binary("vshl", [1.0], [1.0], "f32")


class TestVectorUnaryAndReduce:
    def test_unary(self):
        assert vector_unary("vneg", [1, -2], "i32") == [-1, 2]
        assert vector_unary("vabs", [-3, 4], "i16") == [3, 4]
        assert vector_unary("vabs", [-1.5], "f32") == [1.5]

    def test_reduce_matches_lane_order(self):
        assert vector_reduce("vredsum", 0, [1, 2, 3], "i32") == 6
        assert vector_reduce("vredmin", 100, [5, -1, 7], "i32") == -1
        assert vector_reduce("vredmax", -100, [5, -1, 7], "i32") == 7

    def test_float_reduce_rounds_per_step(self):
        # Equivalent to the scalar loop's sequential fadds.
        from repro import arith
        acc = 0.0
        lanes = [0.1, 0.2, 0.3, 0.4]
        for lane in lanes:
            acc = arith.float_op("fadd", acc, lane)
        assert vector_reduce("vredsum", 0.0, lanes, "f32") == acc

    def test_translator_maps_are_consistent(self):
        assert SCALAR_TO_VECTOR["add"] == "vadd"
        assert SCALAR_TO_VECTOR["fmul"] == "vmul"
        assert SCALAR_TO_REDUCTION["fadd"] == "vredsum"
        assert SCALAR_TO_REDUCTION["min"] == "vredmin"


class TestPermPatterns:
    def test_bfly_swaps_halves(self):
        p = PermPattern("bfly", 4)
        assert p.apply([0, 1, 2, 3]) == [2, 3, 0, 1]
        assert p.apply(list(range(8))) == [2, 3, 0, 1, 6, 7, 4, 5]

    def test_rev_reverses_groups(self):
        p = PermPattern("rev", 4)
        assert p.apply([0, 1, 2, 3, 4, 5, 6, 7]) == [3, 2, 1, 0, 7, 6, 5, 4]

    def test_rot_rotates_left(self):
        p = PermPattern("rot", 4, 1)
        assert p.apply([0, 1, 2, 3]) == [1, 2, 3, 0]

    def test_inverse(self):
        data = list(range(8))
        for pattern in (PermPattern("bfly", 4), PermPattern("rev", 8),
                        PermPattern("rot", 8, 3)):
            assert pattern.inverse().apply(pattern.apply(data)) == data

    def test_offsets_reconstruct_map(self):
        p = PermPattern("bfly", 8)
        offsets = p.offsets(16)
        for i, off in enumerate(offsets):
            assert i + off == p.source_lane(i)

    def test_offsets_width_independent_periodicity(self):
        p = PermPattern("rev", 4)
        offsets = p.offsets(32)
        assert offsets[:4] * 8 == offsets

    def test_lane_map_requires_divisible_width(self):
        with pytest.raises(ValueError):
            PermPattern("bfly", 8).lane_map(4)

    def test_invalid_patterns_rejected(self):
        with pytest.raises(ValueError):
            PermPattern("zip", 4)
        with pytest.raises(ValueError):
            PermPattern("bfly", 3)
        with pytest.raises(ValueError):
            PermPattern("rot", 4, 0)
        with pytest.raises(ValueError):
            PermPattern("rot", 4, 4)


class TestPermutationCAM:
    def test_hit_at_matching_width(self):
        cam = PermutationCAM(8)
        hit = cam.lookup(PermPattern("bfly", 8).offsets(8))
        assert hit is not None and hit.kind == "bfly" and hit.period == 8

    def test_narrower_period_tiles_wider_hardware(self):
        cam = PermutationCAM(16)
        hit = cam.lookup(PermPattern("rev", 4).offsets(16))
        assert hit is not None and hit.name == "rev4"

    def test_wide_pattern_misses_narrow_hardware(self):
        cam = PermutationCAM(4)
        prefix = PermPattern("bfly", 8).offsets(4)
        assert cam.lookup(prefix) is None

    def test_wrong_length_misses(self):
        cam = PermutationCAM(8)
        assert cam.lookup([4, 4, 4, 4]) is None

    def test_garbage_misses(self):
        cam = PermutationCAM(8)
        assert cam.lookup([0, 0, 0, 0, 0, 0, 0, 0]) is None

    def test_restricted_repertoire(self):
        cam = PermutationCAM(8, patterns=(PermPattern("rev", 4),))
        assert cam.lookup(PermPattern("rev", 4).offsets(8)) is not None
        assert cam.lookup(PermPattern("bfly", 4).offsets(8)) is None

    def test_cam_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            PermutationCAM(6)


class TestAccelerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(width=3)
        with pytest.raises(ValueError):
            AcceleratorConfig(width=1)

    def test_generations(self):
        assert sorted(GENERATIONS) == ["simd16", "simd2", "simd4", "simd8"]
        assert config_for_width(8).width == 8
        assert config_for_width(32).width == 32  # built on demand

    def test_vrf_read_write(self):
        vrf = VectorRegisterFile(4)
        vrf.write("v3", [1, 2, 3, 4], "i16")
        assert vrf.read("v3") == [1, 2, 3, 4]
        assert vrf.elem_of("v3") == "i16"
        assert vrf.elem_of("v4") is None

    def test_vrf_lane_count_enforced(self):
        vrf = VectorRegisterFile(4)
        with pytest.raises(ValueError):
            vrf.write("v0", [1, 2], "i32")

    def test_vrf_unknown_register(self):
        vrf = VectorRegisterFile(4)
        with pytest.raises(KeyError):
            vrf.read("r0")

    def test_vrf_read_returns_copy(self):
        vrf = VectorRegisterFile(2)
        vrf.write("vf1", [1.0, 2.0], "f32")
        lanes = vrf.read("vf1")
        lanes[0] = 99.0
        assert vrf.read("vf1") == [1.0, 2.0]

    def test_standard_patterns_cover_all_kinds(self):
        kinds = {p.kind for p in STANDARD_PATTERNS}
        assert kinds == {"bfly", "rev", "rot"}
