"""Cross-width differential conformance suite (docs/retranslation.md).

The headline guarantee of width retranslation: for every paper kernel,
a fragment translated at width ``W`` and re-lowered to ``2W`` *without
re-observing the scalar loop* must agree element-for-element with

* a fresh runtime translation at ``2W``, and
* the reference engine at ``2W``,

on all four execution engines — and every retranslated fragment must
actually execute as microcode (preloads are ready at cycle 0, so the
preloaded run never falls back to scalar for those functions).

The suite also pins the fleet-economics contract of the persistent
fragment store: a warm store performs **zero** retranslations on a
repeat sweep (``retranslate.attempts`` delta is 0 while
``fragstore.hit`` counts the loads), and neither the store nor the
engine choice perturbs run-cache keys or cycle counts.
"""

from __future__ import annotations

import pytest

from repro.core.scalarize import build_liquid_program
from repro.core.translate.fragstore import FragmentStore
from repro.evaluation.crosswidth import (
    ENGINE_ORDER,
    crosswidth_differential,
    retranslate_at_width,
    translate_at_width,
)
from repro.evaluation.runcache import run_key
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.observability import telemetry
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig

SOURCE_WIDTHS = (2, 4)


def _assert_verdict_ok(report: dict) -> None:
    for engine, row in report["engines"].items():
        assert row["arrays_match_fresh"], \
            f"{report['benchmark']} w{report['from_width']}->" \
            f"w{report['to_width']}: retranslated arrays diverge from " \
            f"fresh translation on {engine}"
        assert row["arrays_match_reference"], \
            f"{report['benchmark']}: retranslated arrays diverge from " \
            f"the reference engine on {engine}"
        assert row["microcode_ran"], \
            f"{report['benchmark']}: a preloaded fragment fell back to " \
            f"scalar on {engine}"
    assert report["ok"]


@pytest.mark.parametrize("from_width", SOURCE_WIDTHS)
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_crosswidth_upscale(bench, from_width):
    report = crosswidth_differential(bench, from_width, 2 * from_width)
    _assert_verdict_ok(report)


@pytest.mark.slow
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_crosswidth_upscale_width16(bench):
    """The full 8 -> 16 sweep (nightly: ci-nightly.yml runs -m slow)."""
    report = crosswidth_differential(bench, 8, 16)
    _assert_verdict_ok(report)


@pytest.mark.parametrize("bench", ["GSM Dec.", "LU", "FIR"])
def test_crosswidth_downscale(bench):
    """W/2 re-lowering: 8 -> 4 on kernels with w8-translatable loops."""
    report = crosswidth_differential(bench, 8, 4)
    _assert_verdict_ok(report)


def test_warm_store_does_zero_retranslations(tmp_path):
    """Repeat sweep against a warm store: hits only, no retranslation.

    The first sweep populates the store (translations *and*
    retranslations); the second must be served entirely from it — no
    ``retranslate.attempts``, no ``translate.attempts``, and not even a
    scout machine run (``machine.runs`` stays flat), with
    ``fragstore.hit`` accounting for every load.
    """
    store = FragmentStore(tmp_path / "fragments")
    program = build_liquid_program(build_kernel("FIR"))
    source_config = MachineConfig(accelerator=config_for_width(4),
                                  engine="fast")
    target_tcfg = MachineConfig(
        accelerator=config_for_width(8)).translator_config()

    translations = translate_at_width(program, source_config, store)
    entries = [t.entry for t in translations.values()
               if t.ok and t.entry is not None]
    first = retranslate_at_width(entries, 8, target_tcfg, store)
    assert entries and all(r.ok for r in first.values())
    assert store.stats.stores == len(translations) + len(first)

    tel = telemetry.enable()
    try:
        warm_translations = translate_at_width(program, source_config, store)
        warm_entries = [t.entry for t in warm_translations.values()
                        if t.ok and t.entry is not None]
        second = retranslate_at_width(warm_entries, 8, target_tcfg, store)
        counters = dict(tel.to_dict()["counters"])
    finally:
        telemetry.disable()

    assert counters.get("fragstore.hit", 0) == \
        len(warm_translations) + len(second)
    for absent in ("retranslate.attempts", "retranslate.ok",
                   "translate.attempts", "machine.runs", "fragstore.store",
                   "fragstore.miss"):
        assert absent not in counters, f"warm sweep still did {absent}"
    # The store round-trip is lossless: the warm sweep reproduces the
    # cold sweep's results bit-for-bit, entries included.
    assert {fn: r.to_dict() for fn, r in second.items()} == \
        {fn: r.to_dict() for fn, r in first.items()}
    assert [e.table_key for e in warm_entries] == \
        [e.table_key for e in entries]


def test_store_does_not_drift_cycles(tmp_path):
    """Store-backed and store-free sweeps time identically per engine."""
    store = FragmentStore(tmp_path / "fragments")
    with_store = crosswidth_differential("FFT", 4, 8, store=store)
    # Second store-backed pass exercises the load path end to end.
    warm = crosswidth_differential("FFT", 4, 8, store=store)
    without = crosswidth_differential("FFT", 4, 8, store=None)
    for engine in ENGINE_ORDER:
        assert with_store["engines"][engine] == \
            without["engines"][engine] == warm["engines"][engine]


def test_run_keys_engine_and_store_invariant():
    """Run-cache keys ignore both the engine and microcode preloading."""
    program = build_liquid_program(build_kernel("FIR"))
    keys = {
        run_key(program,
                MachineConfig(accelerator=config_for_width(8),
                              engine=engine))
        for engine in ENGINE_ORDER
    }
    assert len(keys) == 1
    # Preloading rides on the Machine, not the MachineConfig, so there
    # is no config field for it to perturb the key through; pin that by
    # construction.
    assert "preload" not in str(sorted(
        MachineConfig.__dataclass_fields__))
