"""Property-based equivalence tests: numpy fast lowerings vs. reference.

The fast engine's vector lowerings (``binary_fast_fn``/``unary_fast_fn``/
``reduce_fast_fn`` in :mod:`repro.simd.vector_ops`) must be bit-identical
to the reference per-lane Python folds for every opcode, element width,
and operand pattern — including the saturating idioms (``vqadd``/
``vqsub``) at the signed boundaries, where a naive lowering overflows.

Hypothesis drives randomized lane vectors; a fixed-seed exhaustive
boundary sweep backs it up so the corner cases are always covered even
under ``hypothesis``'s example budget.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import arith
from repro.simd import vector_ops

INT_ELEMS = ("i8", "i16", "i32")
INT_BINARY_OPS = ("vadd", "vsub", "vmul", "vand", "vorr", "veor", "vbic",
                  "vshl", "vshr", "vmin", "vmax", "vabd", "vmask",
                  "vqadd", "vqsub")
FLOAT_BINARY_OPS = ("vadd", "vsub", "vmul", "vmin", "vmax", "vabd",
                    "vand", "vorr", "vmask")
UNARY_OPS = ("vabs", "vneg")
REDUCE_OPS = ("vredsum", "vredmin", "vredmax")


def int_lane(elem):
    lo, hi = arith.INT_BOUNDS[elem]
    return st.integers(min_value=lo, max_value=hi)


def int_lanes(elem):
    return st.lists(int_lane(elem), min_size=1, max_size=16)


f32_lane = st.floats(width=32, allow_nan=False)


def bits_list(lanes):
    """NaN-safe bit-exact comparison key for float lane lists."""
    return [arith.float_bits(v) for v in lanes]


# ---------------------------------------------------------------------------
# Hypothesis-driven randomized equivalence
# ---------------------------------------------------------------------------


class TestBinaryInt:
    @given(st.data(), st.sampled_from(INT_BINARY_OPS),
           st.sampled_from(INT_ELEMS))
    @settings(max_examples=200, deadline=None)
    def test_lanes_vs_lanes(self, data, opcode, elem):
        a = data.draw(int_lanes(elem))
        b = data.draw(st.lists(int_lane(elem), min_size=len(a),
                               max_size=len(a)))
        fast = vector_ops.binary_fast_fn(opcode, elem)
        assert fast(a, b) == vector_ops.vector_binary(opcode, a, b, elem)

    @given(st.data(), st.sampled_from(INT_BINARY_OPS),
           st.sampled_from(INT_ELEMS))
    @settings(max_examples=100, deadline=None)
    def test_lanes_vs_broadcast_scalar(self, data, opcode, elem):
        a = data.draw(int_lanes(elem))
        b = data.draw(int_lane(elem))
        fast = vector_ops.binary_fast_fn(opcode, elem)
        assert fast(a, b) == vector_ops.vector_binary(opcode, a, b, elem)


class TestBinaryFloat:
    @given(st.data(), st.sampled_from(("vadd", "vsub", "vmul", "vmin",
                                       "vmax", "vabd")))
    @settings(max_examples=200, deadline=None)
    def test_arith_lanes(self, data, opcode):
        a = data.draw(st.lists(f32_lane, min_size=1, max_size=16))
        b = data.draw(st.lists(f32_lane, min_size=len(a), max_size=len(a)))
        fast = vector_ops.binary_fast_fn(opcode, "f32")
        ref = vector_ops.vector_binary(opcode, a, b, "f32")
        assert bits_list(fast(a, b)) == bits_list(ref)

    @given(st.data(), st.sampled_from(("vand", "vorr", "vmask")))
    @settings(max_examples=100, deadline=None)
    def test_bitwise_masks(self, data, opcode):
        a = data.draw(st.lists(f32_lane, min_size=1, max_size=16))
        masks = data.draw(st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=len(a), max_size=len(a)))
        fast = vector_ops.binary_fast_fn(opcode, "f32")
        ref = vector_ops.vector_binary(opcode, a, masks, "f32")
        assert bits_list(fast(a, masks)) == bits_list(ref)


class TestUnary:
    @given(st.data(), st.sampled_from(UNARY_OPS), st.sampled_from(INT_ELEMS))
    @settings(max_examples=100, deadline=None)
    def test_int(self, data, opcode, elem):
        a = data.draw(int_lanes(elem))
        fast = vector_ops.unary_fast_fn(opcode, elem)
        assert fast(a) == vector_ops.vector_unary(opcode, a, elem)

    @given(st.data(), st.sampled_from(UNARY_OPS))
    @settings(max_examples=100, deadline=None)
    def test_float(self, data, opcode):
        a = data.draw(st.lists(f32_lane, min_size=1, max_size=16))
        fast = vector_ops.unary_fast_fn(opcode, "f32")
        ref = vector_ops.vector_unary(opcode, a, "f32")
        assert bits_list(fast(a)) == bits_list(ref)


class TestReduce:
    @given(st.data(), st.sampled_from(REDUCE_OPS), st.sampled_from(INT_ELEMS))
    @settings(max_examples=200, deadline=None)
    def test_int(self, data, opcode, elem):
        lanes = data.draw(int_lanes(elem))
        acc = data.draw(int_lane("i32"))
        fast = vector_ops.reduce_fast_fn(opcode, elem)
        assert fast(acc, lanes) == \
            vector_ops.vector_reduce(opcode, acc, lanes, elem)

    @given(st.data(), st.sampled_from(REDUCE_OPS))
    @settings(max_examples=100, deadline=None)
    def test_float_delegates_to_reference(self, data, opcode):
        lanes = data.draw(st.lists(f32_lane, min_size=1, max_size=16))
        acc = data.draw(f32_lane)
        acc = arith.f32(acc)
        lanes = [arith.f32(v) for v in lanes]
        fast = vector_ops.reduce_fast_fn(opcode, "f32")
        ref = vector_ops.vector_reduce(opcode, acc, lanes, "f32")
        assert arith.float_bits(fast(acc, lanes)) == arith.float_bits(ref)


# ---------------------------------------------------------------------------
# Deterministic boundary sweep (backs up the randomized coverage)
# ---------------------------------------------------------------------------


def boundary_values(elem):
    lo, hi = arith.INT_BOUNDS[elem]
    return [lo, lo + 1, -1, 0, 1, hi - 1, hi]


@pytest.mark.parametrize("elem", INT_ELEMS)
@pytest.mark.parametrize("opcode", INT_BINARY_OPS)
def test_binary_signed_boundaries(opcode, elem):
    """Every op over the full cross product of signed boundary lanes."""
    values = boundary_values(elem)
    a = [x for x in values for _ in values]
    b = values * len(values)
    fast = vector_ops.binary_fast_fn(opcode, elem)
    assert fast(a, b) == vector_ops.vector_binary(opcode, a, b, elem)


@pytest.mark.parametrize("elem", INT_ELEMS)
@pytest.mark.parametrize("opcode", ("vqadd", "vqsub"))
def test_saturation_clamps_at_boundaries(opcode, elem):
    """The saturating idioms must clamp (not wrap) at both rails."""
    lo, hi = arith.INT_BOUNDS[elem]
    fast = vector_ops.binary_fast_fn(opcode, elem)
    if opcode == "vqadd":
        assert fast([hi], [hi]) == [hi]
        assert fast([lo], [lo]) == [lo]
        assert fast([hi], [1]) == [hi]
    else:
        assert fast([lo], [hi]) == [lo]
        assert fast([hi], [lo]) == [hi]
        assert fast([lo], [1]) == [lo]


@pytest.mark.parametrize("elem", INT_ELEMS)
def test_seeded_random_sweep(elem):
    """Fixed-seed stdlib-random sweep: runs identically on every machine."""
    rng = random.Random(0xC1A0 + len(elem))
    lo, hi = arith.INT_BOUNDS[elem]
    for _ in range(50):
        width = rng.choice((2, 4, 8, 16))
        a = [rng.randint(lo, hi) for _ in range(width)]
        b = [rng.randint(lo, hi) for _ in range(width)]
        for opcode in INT_BINARY_OPS:
            fast = vector_ops.binary_fast_fn(opcode, elem)
            assert fast(a, b) == \
                vector_ops.vector_binary(opcode, a, b, elem), \
                f"{opcode}/{elem} diverged on {a} x {b}"
        for opcode in UNARY_OPS:
            fast = vector_ops.unary_fast_fn(opcode, elem)
            assert fast(a) == vector_ops.vector_unary(opcode, a, elem)
        acc = rng.randint(*arith.INT_BOUNDS["i32"])
        for opcode in REDUCE_OPS:
            fast = vector_ops.reduce_fast_fn(opcode, elem)
            assert fast(acc, a) == \
                vector_ops.vector_reduce(opcode, acc, a, elem)
