"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Imm, Mem, Reg, Sym, VImm


class TestBasics:
    def test_empty_program(self):
        program = assemble("")
        assert len(program) == 0

    def test_simple_instruction(self):
        program = assemble("add r1, r2, #3")
        instr = program.instructions[0]
        assert instr.opcode == "add"
        assert instr.dst == Reg("r1")
        assert instr.srcs == (Reg("r2"), Imm(3))

    def test_comments_stripped(self):
        program = assemble("""
            ; full line comment
            mov r0, #0      ; trailing
            add r0, r0, #1  # hash comment
        """)
        assert len(program) == 2

    def test_hash_immediate_not_a_comment(self):
        program = assemble("mov r0, #5")
        assert program.instructions[0].srcs == (Imm(5),)

    def test_negative_and_hex_immediates(self):
        program = assemble("mov r0, #-3\nmov r1, #0xFF")
        assert program.instructions[0].srcs == (Imm(-3),)
        assert program.instructions[1].srcs == (Imm(255),)

    def test_float_immediate(self):
        program = assemble("fmov f0, #1.5")
        assert program.instructions[0].srcs == (Imm(1.5),)

    def test_labels_and_branches(self):
        program = assemble("""
        main:
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #4
            blt loop
            halt
        """)
        assert program.label_index("loop") == 1
        assert program.instructions[3].target == "loop"

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("b nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\nnop\nx:\nnop")

    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError) as err:
            assemble("frob r1, r2")
        assert "line 1" in str(err.value)


class TestMemoryOperands:
    def test_symbol_plus_register(self):
        program = assemble(".data A f32 4 = 0.0\nldf f0, [A + r1]")
        mem = program.instructions[0].mem
        assert mem == Mem(base=Sym("A"), index=Reg("r1"))

    def test_register_base(self):
        program = assemble("ldw r1, [r2 + #4]")
        mem = program.instructions[0].mem
        assert mem == Mem(base=Reg("r2"), index=Imm(4))

    def test_bare_base(self):
        program = assemble(".data A i32 1 = 0\nldw r1, [A]")
        assert program.instructions[0].mem.index is None

    def test_store_value_then_mem(self):
        program = assemble(".data A i32 4 = 0\nstw r3, [A + r0]")
        instr = program.instructions[0]
        assert instr.srcs == (Reg("r3"),)
        assert instr.mem.base == Sym("A")

    def test_load_elem_inferred_from_opcode(self):
        program = assemble(".data A i16 2 = 0\nldh r1, [A + r0]")
        assert program.instructions[0].elem == "i16"

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("ldw r1, [1 + 2 + 3]")


class TestCmpAndConditionals:
    def test_cmp_has_no_destination(self):
        program = assemble("cmp r1, #5")
        instr = program.instructions[0]
        assert instr.dst is None
        assert instr.srcs == (Reg("r1"), Imm(5))
        assert set(instr.reads()) == {"r1"}

    def test_conditional_move(self):
        program = assemble("movgt r1, #9")
        instr = program.instructions[0]
        assert instr.dst == Reg("r1")


class TestVectorSyntax:
    def test_elem_suffix(self):
        program = assemble("vadd.i16 v1, v2, v3")
        instr = program.instructions[0]
        assert instr.opcode == "vadd"
        assert instr.elem == "i16"

    def test_unknown_elem_suffix(self):
        with pytest.raises(AssemblerError):
            assemble("vadd.q7 v1, v2, v3")

    def test_vector_load(self):
        program = assemble(".data A f32 8 = 0.0\nvld.f32 vf0, [A + r0]")
        instr = program.instructions[0]
        assert instr.dst == Reg("vf0")
        assert instr.elem == "f32"

    def test_vector_immediate(self):
        program = assemble("vand.i32 v1, v2, #<1, 2, 3, 4>")
        instr = program.instructions[0]
        assert instr.srcs[1] == VImm((1, 2, 3, 4))

    def test_scalar_opcode_rejects_vector_register(self):
        with pytest.raises(AssemblerError):
            assemble("add v1, v2, v3")

    def test_perm_with_period(self):
        program = assemble("vbfly.f32 vf1, vf2, #8")
        assert program.instructions[0].srcs[1] == Imm(8)


class TestDataDirectives:
    def test_data_fill(self):
        program = assemble(".data A f32 4 = 1.5")
        assert program.data["A"].values == [1.5] * 4

    def test_data_explicit_values(self):
        program = assemble(".data A i32 = 1, 2, 3")
        assert program.data["A"].values == [1, 2, 3]

    def test_rodata_flag(self):
        program = assemble(".rodata K i32 = 7")
        assert program.data["K"].read_only

    def test_zero_default(self):
        program = assemble(".data A i16 5")
        assert program.data["A"].values == [0] * 5

    def test_count_mismatch_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data A i32 2 = 1, 2, 3")

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data A i32 1 = 0\n.data A i32 1 = 0")

    def test_entry_directive(self):
        program = assemble(".entry start\nstart:\nnop")
        assert program.entry == "start"

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".weird stuff")

    def test_default_entry_is_main(self):
        program = assemble("nop")
        assert program.entry == "main"
        assert program.label_index("main") == 0
