"""Simulation-farm service tests (docs/serving.md).

The contract ``repro serve`` must honor:

* responses carry the exact ``RunResult.to_dict()`` wire format — byte
  identical to a direct scheduler run of the same request,
* warm requests answer from the run cache with zero simulation,
* N simultaneous identical cold requests coalesce onto **one**
  machine-run (single-flight, the run-key analogue of the fragment
  store's first-writer-wins race),
* a crashed worker returns a clean 5xx and the pool is rebuilt — the
  farm never wedges,
* a client that disconnects mid-run abandons only its reply; the run
  completes, lands in the cache, and answers the next request warm,
* malformed jobs get a 400 without touching the pool.
"""

import functools
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import (
    RunRequest,
    _pool_worker,
    build_request_program,
    execute_request,
)
from repro.evaluation.simserver import (
    SERVICE_NAME,
    ServeRequestError,
    SimServer,
    parse_run_request,
)
from repro.observability import telemetry
from repro.system.machine import MachineConfig

FIR_W4 = {"benchmark": "FIR", "width": 4}


def post(server, payload, timeout=60.0):
    """(status, reply dict) for one POST /v1/runs."""
    req = urllib.request.Request(
        server.url + "/v1/runs",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def stats(server):
    with urllib.request.urlopen(server.url + "/stats", timeout=10) as resp:
        return json.loads(resp.read())


@pytest.fixture()
def server(tmp_path):
    server = SimServer(jobs=2, cache=RunCache(tmp_path / "served")).start()
    yield server
    server.shutdown()


class TestParseRunRequest:
    def test_defaults(self):
        request = parse_run_request({"benchmark": "FIR"})
        assert request.program_kind == "liquid"
        assert request.config.accelerator.width == 8
        assert request.config.engine == "fast"
        assert request.repeat_factor == 1

    def test_baseline_has_no_accelerator(self):
        request = parse_run_request({"benchmark": "LU",
                                     "program_kind": "baseline"})
        assert request.config.accelerator is None

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"benchmark": "nope"},
        {"benchmark": "FIR", "program_kind": "mystery"},
        {"benchmark": "FIR", "engine": "warp"},
        {"benchmark": "FIR", "width": 1},
        {"benchmark": "FIR", "width": 4.0},
        {"benchmark": "FIR", "width": True},
        {"benchmark": "FIR", "width": 1 << 20},
        {"benchmark": "FIR", "repeat_factor": 0},
        {"benchmark": "FIR", "repeat_factor": 99},
        {"benchmark": "FIR", "program_kind": "baseline", "width": 4},
        {"benchmark": "FIR", "surprise": 1},
    ])
    def test_rejects_malformed(self, payload):
        with pytest.raises(ServeRequestError):
            parse_run_request(payload)


class TestColdWarm:
    def test_cold_then_hit(self, server):
        status, cold = post(server, FIR_W4)
        assert status == 200 and cold["source"] == "cold"
        assert cold["service"] == SERVICE_NAME
        assert cold["result"]["cycles"] > 0

        status, warm = post(server, FIR_W4)
        assert status == 200 and warm["source"] == "hit"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

        served = stats(server)["stats"]
        assert served["cold"] == 1 and served["executed"] == 1
        assert served["hits"] == 1 and served["errors"] == 0

    def test_result_byte_identical_to_direct_scheduler_run(self, server):
        _, reply = post(server, FIR_W4)
        direct = execute_request(parse_run_request(FIR_W4)).to_dict()
        direct.pop("telemetry", None)
        assert (json.dumps(reply["result"], sort_keys=True)
                == json.dumps(direct, sort_keys=True))

    def test_pre_populated_cache_answers_without_simulation(self,
                                                            tmp_path):
        cache = RunCache(tmp_path / "shared")
        request = parse_run_request(FIR_W4)
        from repro.evaluation.runner import RunScheduler
        RunScheduler(jobs=1, cache=cache).run(request)

        server = SimServer(jobs=1, cache=RunCache(tmp_path / "shared"))
        server.start()
        try:
            status, reply = post(server, FIR_W4)
            assert status == 200 and reply["source"] == "hit"
            assert stats(server)["stats"]["executed"] == 0
        finally:
            server.shutdown()

    def test_keys_are_engine_invariant(self, server):
        """Engines are bit-identical, so a run served for one engine
        answers every other engine's identical request warm."""
        _, cold = post(server, dict(FIR_W4, engine="fast"))
        _, warm = post(server, dict(FIR_W4, engine="reference"))
        assert warm["source"] == "hit"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_cold_run_lands_in_shared_cache(self, server):
        _, reply = post(server, FIR_W4)
        hit = server.cache.load(reply["key"])
        assert hit is not None
        wire = hit.to_dict()
        wire.pop("telemetry", None)
        assert wire == reply["result"]

    def test_serve_telemetry_counters(self, tmp_path):
        server = SimServer(jobs=1, cache=RunCache(tmp_path / "tel"))
        server.start()
        tel = telemetry.enable()
        try:
            post(server, FIR_W4)
            post(server, FIR_W4)
            post(server, {"benchmark": "nope"})
            counters = dict(tel.to_dict()["counters"])
        finally:
            telemetry.disable()
            server.shutdown()
        assert counters.get("serve.requests") == 3
        assert counters.get("serve.cold") == 1
        assert counters.get("serve.executed") == 1
        assert counters.get("serve.hits") == 1
        assert counters.get("serve.bad_requests") == 1


def _counting_worker(log_path, request, encoded):
    """Pool entry point that tallies every machine-run before running.

    O_APPEND writes are atomic at this size, so concurrent workers (or
    racing requests, if single-flight ever broke) each leave exactly
    one line — the same counting idiom as the fragment-store race
    tests, moved to the service layer.
    """
    with open(log_path, "a") as log:
        log.write(f"{request.benchmark}\n")
    time.sleep(0.2)  # hold the run open so duplicates must coalesce
    return _pool_worker(request, encoded)


class TestSingleFlight:
    def test_identical_concurrent_posts_one_machine_run(self, tmp_path):
        log_path = tmp_path / "runs.log"
        server = SimServer(
            jobs=2, cache=RunCache(tmp_path / "cache"),
            worker=functools.partial(_counting_worker, str(log_path)))
        server.start()
        replies = []

        def fire():
            replies.append(post(server, FIR_W4))

        try:
            threads = [threading.Thread(target=fire) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        finally:
            served = stats(server)["stats"]
            server.shutdown()

        assert log_path.read_text().splitlines() == ["FIR"], \
            "8 identical cold requests must cost exactly one machine-run"
        assert served["executed"] == 1
        statuses = [status for status, _ in replies]
        assert statuses == [200] * 8
        sources = sorted(reply["source"] for _, reply in replies)
        assert sources.count("cold") == 1
        # The rest coalesced onto the in-flight run (or, if they raced
        # in after it landed, hit the cache) — never a second cold.
        assert all(s in ("cold", "coalesced", "hit") for s in sources)
        assert sources.count("coalesced") + sources.count("hit") == 7
        results = {json.dumps(reply["result"], sort_keys=True)
                   for _, reply in replies}
        assert len(results) == 1, "every waiter sees identical bytes"

    def test_distinct_requests_do_not_coalesce(self, server):
        _, a = post(server, {"benchmark": "FIR", "width": 4})
        _, b = post(server, {"benchmark": "FIR", "width": 8})
        assert a["key"] != b["key"]
        assert a["source"] == b["source"] == "cold"
        assert stats(server)["stats"]["executed"] == 2


def _crash_on_fft_worker(request, encoded):
    if request.benchmark == "FFT":
        os._exit(3)  # hard-kill the pool process, not an exception
    return _pool_worker(request, encoded)


def _raise_on_lu_worker(request, encoded):
    if request.benchmark == "LU":
        raise ValueError("injected simulation failure")
    return _pool_worker(request, encoded)


class TestFailureModes:
    def test_worker_crash_returns_500_and_pool_recovers(self, tmp_path):
        server = SimServer(jobs=1, cache=RunCache(tmp_path / "cache"),
                           worker=_crash_on_fft_worker)
        server.start()
        try:
            status, reply = post(server, {"benchmark": "FFT", "width": 4})
            assert status == 500 and "error" in reply
            # The broken pool was replaced: the next request simulates.
            status, reply = post(server, FIR_W4)
            assert status == 200 and reply["source"] == "cold"
            served = stats(server)["stats"]
            assert served["errors"] == 1 and served["executed"] == 1
        finally:
            server.shutdown()

    def test_worker_exception_returns_500_without_breaking_pool(
            self, tmp_path):
        server = SimServer(jobs=1, cache=RunCache(tmp_path / "cache"),
                           worker=_raise_on_lu_worker)
        server.start()
        try:
            status, reply = post(server, {"benchmark": "LU", "width": 4})
            assert status == 500
            assert "injected simulation failure" in reply["error"]
            status, reply = post(server, FIR_W4)
            assert status == 200 and reply["source"] == "cold"
        finally:
            server.shutdown()

    def test_failed_key_can_be_retried(self, tmp_path):
        """An error must evict the in-flight entry, not poison the key."""
        flag = tmp_path / "fail-once"
        flag.write_text("x")
        server = SimServer(
            jobs=1, cache=RunCache(tmp_path / "cache"),
            worker=functools.partial(_fail_while_flagged, str(flag)))
        server.start()
        try:
            status, _ = post(server, FIR_W4)
            assert status == 500
            flag.unlink()
            status, reply = post(server, FIR_W4)
            assert status == 200 and reply["source"] == "cold"
        finally:
            server.shutdown()

    def test_client_disconnect_does_not_cancel_the_run(self, server):
        """Send a cold request, vanish before the reply: the run must
        complete, land in the cache, and answer the next request warm."""
        body = json.dumps(FIR_W4).encode("utf-8")
        raw = (f"POST /v1/runs HTTP/1.1\r\nHost: 127.0.0.1\r\n"
               f"Content-Length: {len(body)}\r\n\r\n").encode() + body
        sock = socket.create_connection(("127.0.0.1", server.port),
                                        timeout=10)
        sock.sendall(raw)
        sock.close()  # gone before the simulation finishes

        deadline = time.time() + 60
        while time.time() < deadline:
            if stats(server)["stats"]["executed"] == 1:
                break
            time.sleep(0.05)
        status, reply = post(server, FIR_W4)
        assert status == 200 and reply["source"] in ("hit", "coalesced")
        served = stats(server)["stats"]
        assert served["executed"] == 1, \
            "the abandoned run must be reused, not re-simulated"

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/runs", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400
        assert stats(server)["stats"]["bad_requests"] == 1

    def test_unknown_endpoint_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert excinfo.value.code == 404


def _fail_while_flagged(flag_path, request, encoded):
    if os.path.exists(flag_path):
        raise ValueError("flagged failure")
    return _pool_worker(request, encoded)


class TestStatsEndpoint:
    def test_identifies_service_and_backend(self, server):
        payload = stats(server)
        assert payload["service"] == SERVICE_NAME
        assert payload["jobs"] == 2
        assert payload["backend"]["backend"] == "local"
        assert payload["inflight"] == 0

    def test_no_cache_mode(self, tmp_path):
        server = SimServer(jobs=1, cache=None).start()
        try:
            assert stats(server)["backend"] is None
            status, a = post(server, FIR_W4)
            assert status == 200 and a["source"] == "cold"
            # Sequential identical requests re-simulate without a cache
            # (the memo only serves keys that went through the cache).
            _, b = post(server, FIR_W4)
            assert b["result"] == a["result"]
        finally:
            server.shutdown()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SimServer(jobs=0)


class TestDeterminism:
    def test_served_result_round_trips_the_wire_format(self, server):
        _, reply = post(server, FIR_W4)
        request = RunRequest("FIR", "liquid", MachineConfig(
            accelerator=parse_run_request(FIR_W4).config.accelerator))
        program = build_request_program(request)
        direct = execute_request(request, program)
        assert reply["result"]["cycles"] == direct.cycles
        assert reply["result"]["arrays"] == direct.to_dict()["arrays"]
