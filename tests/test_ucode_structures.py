"""Unit tests for the microcode buffer, cache, and hardware cost model."""

import pytest

from repro.core.translate.hw_model import (
    PAPER_AREA_MM2,
    PAPER_CRIT_PATH_GATES,
    PAPER_DELAY_NS,
    PAPER_TOTAL_CELLS,
    TranslatorHardwareModel,
)
from repro.core.translate.ucode_buffer import BufferOverflow, MicrocodeBuffer
from repro.core.translate.ucode_cache import MicrocodeCache, MicrocodeEntry
from repro.isa.instructions import Instruction, Reg
from repro.isa.program import Program


def _instr(op="nop", dst=None, srcs=()):
    return Instruction(op, dst=Reg(dst) if dst else None,
                       srcs=tuple(Reg(s) for s in srcs))


def _entry(function: str, n_instr: int = 3, ready: int = 0) -> MicrocodeEntry:
    fragment = Program(f"{function}_uc")
    for _ in range(n_instr):
        fragment.emit(_instr())
    fragment.labels["u_entry"] = 0
    fragment.entry = "u_entry"
    return MicrocodeEntry(function=function, fragment=fragment, width=8,
                          ready_cycle=ready)


class TestMicrocodeBuffer:
    def test_append_and_live_count(self):
        buf = MicrocodeBuffer(capacity=8)
        buf.append(0, [_instr(), _instr()])
        buf.append(1, [_instr()])
        assert buf.live_instruction_count() == 3
        assert len(buf.live_entries()) == 2

    def test_overflow_raises(self):
        buf = MicrocodeBuffer(capacity=2)
        buf.append(0, [_instr(), _instr()])
        with pytest.raises(BufferOverflow):
            buf.append(1, [_instr()])

    def test_kill_frees_capacity(self):
        buf = MicrocodeBuffer(capacity=2)
        entry = buf.append(0, [_instr(), _instr()])
        buf.kill(entry)
        buf.append(1, [_instr(), _instr()])  # fits again
        assert buf.live_instruction_count() == 2

    def test_peak_tracking(self):
        buf = MicrocodeBuffer(capacity=8)
        e = buf.append(0, [_instr()] * 5)
        buf.kill(e)
        buf.append(1, [_instr()])
        assert buf.peak_live == 5

    def test_reg_still_read(self):
        buf = MicrocodeBuffer(capacity=8)
        load = buf.append(0, [_instr("vld", dst="v1")], loads_reg="v1")
        buf.append(1, [_instr("vadd", dst="v2", srcs=("v1", "v3"))])
        assert buf.reg_still_read("v1", excluding=load)
        assert not buf.reg_still_read("v9")

    def test_entries_keep_order(self):
        buf = MicrocodeBuffer(capacity=8)
        for pc in (5, 7, 9):
            buf.append(pc, [_instr()])
        assert [e.source_pc for e in buf.live_entries()] == [5, 7, 9]


class TestMicrocodeCache:
    def test_insert_and_lookup(self):
        cache = MicrocodeCache(entries=2)
        cache.insert(_entry("f1"))
        assert cache.lookup("f1", now=10) is not None
        assert cache.lookup("f2", now=10) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_not_ready_counts_as_miss(self):
        cache = MicrocodeCache(entries=2)
        cache.insert(_entry("f1", ready=100))
        assert cache.lookup("f1", now=50) is None
        assert cache.stats.not_ready == 1
        assert cache.lookup("f1", now=100) is not None

    def test_lru_eviction(self):
        cache = MicrocodeCache(entries=2)
        cache.insert(_entry("a"))
        cache.insert(_entry("b"))
        cache.lookup("a", now=0)        # a becomes MRU
        evicted = cache.insert(_entry("c"))
        assert evicted.function == "b"
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")
        assert cache.stats.evictions == 1

    def test_reinsert_same_function_no_eviction(self):
        cache = MicrocodeCache(entries=1)
        cache.insert(_entry("a"))
        assert cache.insert(_entry("a")) is None
        assert len(cache) == 1

    def test_paper_geometry_is_2kb(self):
        cache = MicrocodeCache(entries=8)
        assert cache.storage_bytes() == 2048

    def test_minimum_one_entry(self):
        with pytest.raises(ValueError):
            MicrocodeCache(entries=0)


class TestHardwareModel:
    def test_calibration_matches_table2(self):
        model = TranslatorHardwareModel()  # 8-wide reference
        assert model.total_cells() == PAPER_TOTAL_CELLS
        assert model.critical_path_gates() == PAPER_CRIT_PATH_GATES
        assert abs(model.delay_ns() - PAPER_DELAY_NS) < 0.01
        assert abs(model.area_mm2() - PAPER_AREA_MM2) < 0.001

    def test_frequency_above_650mhz(self):
        assert TranslatorHardwareModel().frequency_mhz() > 650

    def test_register_state_scales_linearly_with_width(self):
        narrow = TranslatorHardwareModel(width=4)
        wide = TranslatorHardwareModel(width=16)
        ref = TranslatorHardwareModel(width=8)
        assert abs(narrow.register_state_cells() * 2
                   - ref.register_state_cells()) <= 1
        assert wide.register_state_cells() == ref.register_state_cells() * 2

    def test_register_state_scales_with_register_count(self):
        more_regs = TranslatorHardwareModel(arch_registers=32)
        ref = TranslatorHardwareModel()
        assert more_regs.register_state_cells() == 2 * ref.register_state_cells()

    def test_buffer_scales_with_entries(self):
        half = TranslatorHardwareModel(buffer_entries=32)
        ref = TranslatorHardwareModel()
        assert half.buffer_cells() < ref.buffer_cells()
        assert half.buffer_sram_bytes() == 128

    def test_wider_translator_has_longer_critical_path(self):
        assert TranslatorHardwareModel(width=16).critical_path_gates() == 17
        assert TranslatorHardwareModel(width=32).critical_path_gates() == 18

    def test_breakdown_sums_to_total(self):
        model = TranslatorHardwareModel(width=16, buffer_entries=32)
        assert sum(model.breakdown().values()) == model.total_cells()

    def test_register_state_dominates_area(self):
        # Section 4.1: the register state is the largest block (~half).
        model = TranslatorHardwareModel()
        breakdown = model.breakdown()
        assert breakdown["register_state"] == max(breakdown.values())

    def test_table2_row_fields(self):
        row = TranslatorHardwareModel().table2_row()
        assert row["description"] == "8-wide Translator"
        assert row["area_cells"] == PAPER_TOTAL_CELLS


class TestMicrocodeEntryIdentity:
    """Content-based identity (docs/retranslation.md): entries with the
    same function, width, and encoded fragment bytes are interchangeable
    regardless of when they became ready or where they came from."""

    def test_equal_by_content_not_ready_cycle(self):
        a = _entry("fn", ready=0)
        b = _entry("fn", ready=0)
        assert a == b and hash(a) == hash(b)
        assert a.table_key == b.table_key

    def test_table_key_components(self):
        entry = _entry("fn")
        assert entry.table_key == ("fn", 8, entry.encoded_bytes())

    def test_differs_on_fragment_bytes(self):
        a = _entry("fn", n_instr=3)
        b = _entry("fn", n_instr=4)
        assert a != b and a.table_key != b.table_key

    def test_with_ready_cycle_preserves_encoding_memo(self):
        entry = _entry("fn", ready=7)
        raw = entry.encoded_bytes()
        clone = entry.with_ready_cycle(0)
        assert clone.ready_cycle == 0 and entry.ready_cycle == 7
        assert clone.encoded_bytes() is raw
        assert clone.table_key == entry.table_key

    def test_from_dict_round_trip_dedupes_with_fresh(self):
        fresh = _entry("fn")
        loaded = MicrocodeEntry.from_dict(fresh.to_dict())
        assert loaded == fresh
        assert loaded.encoded_bytes() == fresh.encoded_bytes()
        # Store-loaded and fresh entries key identically in fragment
        # tables, so turbo/macro caches never duplicate work.
        assert len({fresh.table_key, loaded.table_key}) == 1
