"""Tests for accelerator generations: opcode repertoires and JIT mode.

The paper's two generation axes are vector width and opcode repertoire
("the number of opcodes in the ARM SIMD instruction set went from 60 to
more than 120" between ISA v6 and v7).  A Liquid binary using newer
opcodes must still run — scalar — on older generations, while its basic
loops accelerate.
"""

import pytest

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.core.translate.translator import AbortReason
from repro.simd.accelerator import (
    BASIC_VECTOR_OPS,
    FULL_VECTOR_OPS,
    AcceleratorConfig,
    first_generation,
)
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import arrays_equal

from conftest import run_program, sat_kernel, simple_kernel


class TestRepertoireDefinitions:
    def test_basic_is_a_strict_subset(self):
        assert BASIC_VECTOR_OPS < FULL_VECTOR_OPS
        # Roughly the paper's v6->v7 doubling.
        assert len(BASIC_VECTOR_OPS) <= len(FULL_VECTOR_OPS) * 0.7

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(width=8, vector_ops=frozenset({"vmagic"}))

    def test_saturation_switch_removes_q_ops(self):
        config = AcceleratorConfig(width=8, supports_saturation=False)
        assert not config.supports_op("vqadd")
        assert config.supports_op("vadd")

    def test_first_generation_factory(self):
        gen1 = first_generation(8)
        assert gen1.width == 8
        assert not gen1.supports_op("vqadd")
        assert not gen1.supports_op("vabd")
        assert gen1.supports_op("vadd")
        assert all(p.period <= 8 for p in gen1.permutations)


class TestRepertoireEnforcement:
    def test_missing_opcode_aborts_translation(self):
        # A min/max-using kernel on a generation without vmin/vmax.
        from repro.kernels.dsl import LoopBuilder
        from repro.core.scalarize.loop_ir import Kernel
        from repro.isa.program import DataArray
        b = LoopBuilder("hot", trip=32, elem="f32")
        x = b.load("x")
        b.store("out", b.min(x, b.imm(0.5)))
        kernel = Kernel("k", arrays=[
            DataArray("x", "f32", [0.1 * i for i in range(32)]),
            DataArray("out", "f32", [0.0] * 32),
        ], stages=[b.build()], schedule=["hot"], repeats=4)
        gen1 = first_generation(8)
        result = Machine(MachineConfig(accelerator=gen1)).run(
            build_liquid_program(kernel))
        assert not result.translations[0].ok
        assert result.translations[0].reason is AbortReason.UNSUPPORTED_OPCODE

    def test_old_generation_still_computes_correctly(self):
        kernel = sat_kernel(calls=4)  # saturating: needs vqadd
        baseline = run_program(build_baseline_program(kernel))
        gen1 = first_generation(8)
        result = Machine(MachineConfig(accelerator=gen1)).run(
            build_liquid_program(kernel))
        assert arrays_equal(baseline, result)
        assert result.functions["hot_fn"].simd_runs == 0  # stayed scalar

    def test_basic_loops_accelerate_on_old_generation(self):
        kernel = simple_kernel(calls=6)  # add/mul only: in BASIC set
        gen1 = first_generation(8)
        result = Machine(MachineConfig(accelerator=gen1)).run(
            build_liquid_program(kernel))
        assert result.successful_translations == 1
        assert result.functions["hot_fn"].simd_runs > 0


class TestSoftwareTranslation:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(translation_mode="firmware")

    def test_jit_produces_identical_results(self):
        kernel = simple_kernel(calls=8)
        liquid = build_liquid_program(kernel)
        hw = run_program(liquid, width=8)
        sw = run_program(liquid, width=8, translation_mode="software")
        assert arrays_equal(hw, sw)
        assert sw.functions["hot_fn"].simd_runs > 0

    def test_jit_costs_core_cycles(self):
        kernel = simple_kernel(calls=8)
        liquid = build_liquid_program(kernel)
        hw = run_program(liquid, width=8)
        sw = run_program(liquid, width=8, translation_mode="software",
                         software_cycles_per_instruction=100)
        assert sw.cycles > hw.cycles

    def test_jit_microcode_available_immediately(self):
        # The JIT blocks until done, so even back-to-back calls hit.
        kernel = simple_kernel(calls=3)
        liquid = build_liquid_program(kernel)
        sw = run_program(liquid, width=8, translation_mode="software")
        assert sw.functions["hot_fn"].scalar_runs == 1
        assert sw.functions["hot_fn"].simd_runs == 2

    def test_comparison_experiment(self):
        from repro.evaluation import software_translation_comparison
        rows = software_translation_comparison(("LU",), width=8)
        row = rows[0]
        assert row["software_cycles"] >= row["hardware_cycles"]
        assert row["jit_cost_pct"] < 15.0  # one-time cost stays small
        assert row["hw_simd_runs"] <= row["sw_simd_runs"] + 4


class TestObservationPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(observation_point="rename")

    def test_decode_mode_translates_data_parallel_loops(self):
        kernel = simple_kernel(calls=6)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=8, observation_point="decode")
        assert result.successful_translations == 1
        assert result.functions["hot_fn"].simd_runs > 0

    def test_decode_mode_rejects_permutations(self):
        from conftest import perm_kernel
        liquid = build_liquid_program(perm_kernel(calls=4, period=4))
        result = run_program(liquid, width=8, observation_point="decode")
        assert result.successful_translations == 0
        retire = run_program(liquid, width=8)
        assert retire.successful_translations == 1

    def test_decode_mode_is_correct_regardless(self):
        from conftest import perm_kernel
        from repro.core.scalarize import build_baseline_program
        kernel = perm_kernel(calls=4, period=4)
        base = run_program(build_baseline_program(kernel))
        decode = run_program(build_liquid_program(kernel), width=8,
                             observation_point="decode")
        assert arrays_equal(base, decode)
