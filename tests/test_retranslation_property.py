"""Property tests for cross-width retranslation (satellite of the
cross-width differential suite; docs/retranslation.md).

Random DSL loops go through the scalarizer, translate at width
W ∈ {2, 4}, retranslate to 2W, and must produce bit-identical memory to
both a fresh runtime translation at 2W and the reference engine —
including the chained W -> 2W -> 4W path, which proves retranslation
composes.  A directed battery then drives **every** plan-time rejection
reason at least once, checking the telemetry counter each bump.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scalarize import Kernel, build_liquid_program
from repro.core.translate.retranslate import (
    RetranslateReason,
    retranslate_chain,
    retranslate_entry,
)
from repro.core.translate.translator import TranslatorConfig
from repro.core.translate.ucode_cache import MicrocodeEntry
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.program import DataArray, Program
from repro.kernels.dsl import LoopBuilder
from repro.observability import telemetry
from repro.simd.accelerator import config_for_width
from repro.simd.permutations import PermPattern
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import arrays_equal


# ---------------------------------------------------------------------------
# Random-kernel differential property
# ---------------------------------------------------------------------------

def _random_kernel(draw) -> Kernel:
    trip = draw(st.sampled_from([16, 32, 48]))
    builder = LoopBuilder("hot", trip=trip, elem="f32")
    x = builder.load("x")
    value = x
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        op = draw(st.sampled_from(["add", "mul", "sub"]))
        if draw(st.booleans()):
            operand = builder.imm(float(draw(st.integers(-4, 4))))
        else:
            operand = builder.load("y")
        value = builder.binary(op, value, operand)
    if draw(st.booleans()):
        value = builder.bfly(value, 2)
    builder.store("out", value)
    if draw(st.booleans()):
        builder.reduce("sum", value, acc="f1", init=0.0, store_to="acc")
    return Kernel(
        name="prop",
        arrays=[
            DataArray("x", "f32", [float((i * 7) % 13) * 0.5
                                   for i in range(trip)]),
            DataArray("y", "f32", [float((i * 5) % 11) * 0.25
                                   for i in range(trip)]),
            DataArray("out", "f32", [0.0] * trip),
            DataArray("acc", "f32", [0.0]),
        ],
        stages=[builder.build()],
        schedule=["hot"],
        repeats=2,
    )


def _entries_at(program, width):
    config = MachineConfig(accelerator=config_for_width(width),
                           engine="fast")
    run = Machine(config).run(program)
    return [t.entry for t in run.translations
            if t.ok and t.entry is not None], run


def _assert_preload_matches(program, preload, width) -> None:
    """Preloaded run == fresh run == reference, element for element."""
    fresh = Machine(MachineConfig(accelerator=config_for_width(width),
                                  engine="fast")).run(program)
    reference = Machine(MachineConfig(accelerator=config_for_width(width),
                                      engine="reference")).run(program)
    retr = Machine(MachineConfig(accelerator=config_for_width(width),
                                 engine="fast"),
                   preloaded_microcode=preload).run(program)
    assert arrays_equal(retr, fresh)
    assert arrays_equal(retr, reference)
    for entry in preload:
        stats = retr.functions[entry.function]
        assert stats.simd_runs > 0 and stats.scalar_runs == 0


@settings(max_examples=20, deadline=None)
@given(data=st.data(), source_width=st.sampled_from([2, 4]))
def test_random_loops_retranslate_bit_identically(data, source_width):
    kernel = _random_kernel(data.draw)
    program = build_liquid_program(kernel)
    entries, _ = _entries_at(program, source_width)
    if not entries:  # some random shapes legitimately abort translation
        return
    target = 2 * source_width
    target_tcfg = MachineConfig(
        accelerator=config_for_width(target)).translator_config()
    preload = []
    for entry in entries:
        result = retranslate_entry(entry, target, target_tcfg)
        assert result.ok, \
            f"rescalable shape rejected: {result.reason} ({result.detail})"
        assert result.entry.width == target
        preload.append(result.entry)
    _assert_preload_matches(program, preload, target)


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_chained_retranslation_composes(data):
    """W -> 2W -> 4W equals the direct jump and the fresh oracle."""
    kernel = _random_kernel(data.draw)
    program = build_liquid_program(kernel)
    entries, _ = _entries_at(program, 2)
    if not entries:
        return
    config_for = {
        w: MachineConfig(
            accelerator=config_for_width(w)).translator_config()
        for w in (4, 8)
    }
    preload = []
    for entry in entries:
        chain = retranslate_chain(entry, (4, 8), config_for)
        assert [r.ok for r in chain] == [True, True]
        direct = retranslate_entry(entry, 8, config_for[8])
        assert direct.ok
        # Composition is exact: two hops produce the same bytes as one.
        assert chain[-1].entry.table_key == direct.entry.table_key
        preload.append(chain[-1].entry)
    _assert_preload_matches(program, preload, 8)


# ---------------------------------------------------------------------------
# Directed rejection battery: every plan-time reason fires
# ---------------------------------------------------------------------------

def _fragment(instrs, labels=None, width=4, function="f"):
    program = Program(f"{function}_ucode_w{width}")
    program.emit_all(instrs)
    program.labels = dict(labels or {})
    program.labels.setdefault("u_entry", 0)
    program.entry = "u_entry"
    return MicrocodeEntry(function=function, fragment=program, width=width)


def _loop(width=4, trip=16, body=()):
    return [
        Instruction("mov", dst=Reg("r0"), srcs=(Imm(0),)),
        *body,
        Instruction("add", dst=Reg("r0"), srcs=(Reg("r0"), Imm(width))),
        Instruction("cmp", srcs=(Reg("r0"), Imm(trip))),
        Instruction("blt", target="u1"),
    ]


_LOOP_LABELS = {"u_entry": 0, "u1": 1}

_COPY_BODY = (
    Instruction("vld", dst=Reg("vf2"),
                mem=Mem(base=Sym("x"), index=Reg("r0")), elem="f32"),
    Instruction("vst", srcs=(Reg("vf2"),),
                mem=Mem(base=Sym("out"), index=Reg("r0")), elem="f32"),
)


def _cfg(width, **kwargs) -> TranslatorConfig:
    return TranslatorConfig(width=width, **kwargs)


REJECTIONS = [
    (
        "bad-width",
        _fragment(_loop(body=_COPY_BODY), _LOOP_LABELS),
        3, {}, RetranslateReason.BAD_WIDTH,
    ),
    (
        "no-loop",
        _fragment(list(_COPY_BODY)),
        8, {}, RetranslateReason.NO_LOOP,
    ),
    (
        "malformed-loop",
        # Latch increment steps 1, not the source width.
        _fragment([
            *_COPY_BODY,
            Instruction("add", dst=Reg("r0"), srcs=(Reg("r0"), Imm(1))),
            Instruction("cmp", srcs=(Reg("r0"), Imm(16))),
            Instruction("blt", target="u_entry"),
        ]),
        8, {}, RetranslateReason.MALFORMED_LOOP,
    ),
    (
        "trip-not-divisible",
        _fragment(_loop(trip=8, body=_COPY_BODY), _LOOP_LABELS),
        16, {}, RetranslateReason.TRIP_NOT_DIVISIBLE,
    ),
    (
        "non-affine-access",
        _fragment(_loop(body=(
            Instruction("vld", dst=Reg("vf2"),
                        mem=Mem(base=Sym("x"), index=Imm(0)), elem="f32"),
            _COPY_BODY[1],
        )), _LOOP_LABELS),
        8, {}, RetranslateReason.NON_AFFINE_ACCESS,
    ),
    (
        "non-affine-induction-update",
        _fragment(_loop(body=(
            *_COPY_BODY,
            Instruction("add", dst=Reg("r0"), srcs=(Reg("r0"), Imm(2))),
        )), _LOOP_LABELS),
        8, {}, RetranslateReason.NON_AFFINE_ACCESS,
    ),
    (
        "width-dependent-constant",
        # VImm lanes (1,2,3,4) are 4-wide but not 2-periodic.
        _fragment(_loop(body=(
            _COPY_BODY[0],
            Instruction("vmul", dst=Reg("vf2"),
                        srcs=(Reg("vf2"), VImm((1.0, 2.0, 3.0, 4.0))),
                        elem="f32"),
            _COPY_BODY[1],
        )), _LOOP_LABELS),
        2, {}, RetranslateReason.WIDTH_DEPENDENT_CONSTANT,
    ),
    (
        "perm-period-exceeds-width",
        _fragment(_loop(body=(
            _COPY_BODY[0],
            Instruction("vbfly", dst=Reg("vf2"),
                        srcs=(Reg("vf2"), Imm(4)), elem="f32"),
            _COPY_BODY[1],
        )), _LOOP_LABELS),
        2, {}, RetranslateReason.PERM_PERIOD_EXCEEDS_WIDTH,
    ),
    (
        "perm-not-in-repertoire",
        _fragment(_loop(body=(
            _COPY_BODY[0],
            Instruction("vbfly", dst=Reg("vf2"),
                        srcs=(Reg("vf2"), Imm(2)), elem="f32"),
            _COPY_BODY[1],
        )), _LOOP_LABELS),
        8, {"permutations": (PermPattern("rev", 4),)},
        RetranslateReason.PERM_NOT_IN_REPERTOIRE,
    ),
    (
        "opcode-not-in-target-repertoire",
        _fragment(_loop(body=(
            _COPY_BODY[0],
            Instruction("vadd", dst=Reg("vf2"),
                        srcs=(Reg("vf2"), Reg("vf2")), elem="f32"),
            _COPY_BODY[1],
        )), _LOOP_LABELS),
        8, {"supported_vector_ops": frozenset({"vld", "vst"})},
        RetranslateReason.UNSUPPORTED_OPCODE,
    ),
]


@pytest.mark.parametrize("name,entry,target,cfg_kwargs,reason",
                         REJECTIONS, ids=[r[0] for r in REJECTIONS])
def test_rejection_reason_fires(name, entry, target, cfg_kwargs, reason):
    tel = telemetry.enable()
    try:
        result = retranslate_entry(entry, target, _cfg(target, **cfg_kwargs))
        counters = dict(tel.to_dict()["counters"])
    finally:
        telemetry.disable()
    assert not result.ok
    assert result.entry is None
    assert result.reason is reason
    assert counters.get("retranslate.attempts") == 1
    assert counters.get(f"retranslate.abort.{reason.value}") == 1
    assert "retranslate.ok" not in counters


def test_every_rejection_reason_is_covered():
    """The battery above exercises the complete catalog."""
    covered = {reason for _, _, _, _, reason in REJECTIONS}
    assert covered == set(RetranslateReason)


def test_accepting_path_counts_ok():
    entry = _fragment(_loop(body=_COPY_BODY), _LOOP_LABELS)
    tel = telemetry.enable()
    try:
        result = retranslate_entry(entry, 8, _cfg(8))
        counters = dict(tel.to_dict()["counters"])
    finally:
        telemetry.disable()
    assert result.ok and result.entry.width == 8
    latch = result.entry.fragment.instructions[-3]
    assert latch.opcode == "add" and int(latch.srcs[1].value) == 8
    assert counters.get("retranslate.ok") == 1


def test_vimm_tiles_up_and_narrows_down():
    body = (
        _COPY_BODY[0],
        Instruction("vmul", dst=Reg("vf2"),
                    srcs=(Reg("vf2"), VImm((1.0, -1.0, 1.0, -1.0))),
                    elem="f32"),
        _COPY_BODY[1],
    )
    entry = _fragment(_loop(body=body), _LOOP_LABELS)
    up = retranslate_entry(entry, 8, _cfg(8))
    assert up.ok
    assert up.entry.fragment.instructions[2].srcs[1] == \
        VImm((1.0, -1.0) * 4)
    down = retranslate_entry(entry, 2, _cfg(2))
    assert down.ok
    assert down.entry.fragment.instructions[2].srcs[1] == VImm((1.0, -1.0))
