"""Shared run-cache daemon + HTTP backend tests (docs/evaluation-runner.md).

The fleet contract the cache server must honor:

* local and HTTP backends answer each other's entries byte-identically
  (the daemon serves the very files ``--cache-dir`` writes),
* stores are first-writer-wins — concurrent writers of one key, in one
  process or racing across processes, leave exactly one valid entry,
* a whole sweep's presence probe costs one HTTP round-trip,
* every network failure fails open (miss / skipped store / empty
  probe), counted under ``runcache.http.errors``, never raised.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.evaluation.cacheserver import (
    CacheServer,
    HTTPCacheBackend,
    SERVICE_NAME,
)
from repro.evaluation.runcache import (
    CACHE_FORMAT_VERSION,
    LocalDirectoryBackend,
    RunCache,
    entry_payload,
    run_key,
)
from repro.evaluation.runner import build_request_program, execute_request
from repro.observability import telemetry
from tests.test_runner import liquid_request

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


@pytest.fixture()
def server(tmp_path):
    server = CacheServer(tmp_path / "served", port=0).start()
    yield server
    server.shutdown()


def _http(server) -> HTTPCacheBackend:
    return HTTPCacheBackend(server.url)


class TestRoundtrip:
    def test_store_then_load_bytes(self, server):
        backend = _http(server)
        assert backend.load(KEY_A) is None
        assert backend.store(KEY_A, b"payload-bytes") is True
        assert backend.load(KEY_A) == b"payload-bytes"

    def test_local_write_visible_over_http(self, server):
        server.backend.store(KEY_A, b"written-locally")
        assert _http(server).load(KEY_A) == b"written-locally"

    def test_http_write_visible_locally(self, server):
        _http(server).store(KEY_A, b"written-remotely")
        assert server.backend.load(KEY_A) == b"written-remotely"

    def test_backends_interoperate_on_real_entries(self, server):
        """A cached run stored via one backend is byte-identical and
        loadable through the other — the --cache-dir/--cache-url duality
        the CACHE_FORMAT_VERSION contract promises."""
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        result = execute_request(request)
        via_http = RunCache(backend=_http(server))
        via_http.store(key, result)

        local = RunCache(backend=server.backend)
        hit = local.load(key)
        assert hit is not None and hit.cycles == result.cycles
        assert server.backend.load(key) == entry_payload(key, result)

    def test_delete_removes_entry(self, server):
        backend = _http(server)
        backend.store(KEY_A, b"x")
        backend.delete(KEY_A)
        assert backend.load(KEY_A) is None

    def test_clear_reports_removed(self, server):
        backend = _http(server)
        backend.store(KEY_A, b"x")
        backend.store(KEY_B, b"y")
        assert backend.clear() == 2
        assert backend.describe()["entries"] == 0


class TestFirstWriterWins:
    def test_second_store_loses(self, server):
        backend = _http(server)
        assert backend.store(KEY_A, b"first") is True
        assert backend.store(KEY_A, b"first") is False
        assert backend.load(KEY_A) == b"first"

    def test_race_is_counted_not_raised(self, server):
        cache = RunCache(backend=_http(server))
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        result = execute_request(request)
        tel = telemetry.enable()
        try:
            cache.store(key, result)
            cache.store(key, result)
            counters = dict(tel.to_dict()["counters"])
        finally:
            telemetry.disable()
        assert cache.stats.stores == 1 and cache.stats.races == 1
        assert counters.get("runcache.stores") == 1
        assert counters.get("runcache.races") == 1


def _racing_store(root_and_tag):
    """Child-process body: store one key, report whether we won."""
    root, tag = root_and_tag
    backend = LocalDirectoryBackend(root)
    # Deterministic results mean racing writers hold identical bytes.
    return backend.store(KEY_A, b"identical-entry-bytes"), tag


class TestConcurrentWriters:
    def test_two_processes_one_valid_entry(self, tmp_path):
        """Two processes racing ``store()`` on one key: exactly one
        winner, and the surviving entry is intact (the fragment store's
        first-writer-wins guarantee, ported to the run cache)."""
        root = str(tmp_path / "raced")
        with ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(pool.map(_racing_store,
                                     [(root, "a"), (root, "b")] * 4))
        wins = sum(1 for won, _ in outcomes if won)
        assert wins == 1, f"expected exactly one winning store: {outcomes}"
        backend = LocalDirectoryBackend(root)
        assert backend.load(KEY_A) == b"identical-entry-bytes"
        assert sum(1 for _ in backend.entry_paths()) == 1

    def test_no_tmp_litter_after_race(self, tmp_path):
        root = tmp_path / "raced"
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(_racing_store, [(str(root), "a"), (str(root), "b")]))
        leftovers = [p for p in root.rglob("*") if p.is_file()
                     and not p.name.endswith(".json")]
        assert leftovers == [], "losing writer must clean up its temp file"


class TestBatchProbe:
    def test_contains_many_is_one_round_trip(self, server):
        backend = _http(server)
        backend.store(KEY_A, b"x")
        posts_before = server.request_counts.get("POST", 0)
        present = backend.contains_many([KEY_A, KEY_B])
        assert present == {KEY_A}
        assert server.request_counts.get("POST", 0) == posts_before + 1

    def test_empty_probe_skips_network(self, server):
        posts_before = server.request_counts.get("POST", 0)
        assert _http(server).contains_many([]) == set()
        assert server.request_counts.get("POST", 0) == posts_before


class TestFailOpen:
    @pytest.fixture()
    def dead(self, server):
        """A backend whose daemon has already gone away."""
        backend = _http(server)
        server.shutdown()
        return backend

    def test_load_fails_open(self, dead):
        assert dead.load(KEY_A) is None

    def test_store_fails_open(self, dead):
        assert dead.store(KEY_A, b"x") is False

    def test_probe_fails_open(self, dead):
        assert dead.contains_many([KEY_A, KEY_B]) == set()

    def test_describe_reports_unreachable(self, dead):
        info = dead.describe()
        assert info["backend"] == "http"
        assert info["reachable"] is False

    def test_failures_are_counted(self, dead):
        tel = telemetry.enable()
        try:
            dead.load(KEY_A)
            dead.store(KEY_A, b"x")
            counters = dict(tel.to_dict()["counters"])
        finally:
            telemetry.disable()
        assert counters.get("runcache.http.errors") == 2
        assert counters.get("runcache.http.requests") == 2

    def test_failopen_warns_once_at_threshold(self, dead, caplog):
        """Persistent unreachability surfaces exactly one warning (plus
        a ``runcache.http.failopen`` count) at the consecutive-failure
        threshold — not a warning per request, not silence forever."""
        import logging

        from repro.evaluation.cacheserver import FAILOPEN_THRESHOLD

        tel = telemetry.enable()
        try:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.evaluation.cacheserver"):
                for _ in range(FAILOPEN_THRESHOLD + 4):
                    dead.load(KEY_A)
            counters = dict(tel.to_dict()["counters"])
        finally:
            telemetry.disable()
        warnings = [r for r in caplog.records
                    if "failing open" in r.getMessage()]
        assert len(warnings) == 1, \
            "one warning at the threshold, silence after"
        assert dead.url in warnings[0].getMessage()
        assert counters.get("runcache.http.failopen") == 1
        assert dead.consecutive_failures == FAILOPEN_THRESHOLD + 4

    def test_failures_below_threshold_stay_quiet(self, dead, caplog):
        import logging

        from repro.evaluation.cacheserver import FAILOPEN_THRESHOLD

        with caplog.at_level(logging.WARNING,
                             logger="repro.evaluation.cacheserver"):
            for _ in range(FAILOPEN_THRESHOLD - 1):
                dead.load(KEY_A)
        assert not [r for r in caplog.records
                    if "failing open" in r.getMessage()]

    def test_any_reply_rearms_the_detector(self, server):
        """A successful round-trip resets the consecutive-failure count
        and re-arms the one-shot warning, so a daemon that flaps warns
        on each outage rather than only the first."""
        backend = _http(server)
        backend.consecutive_failures = 7
        backend._failopen_reported = True
        assert backend.load(KEY_A) is None  # a served miss, not an error
        assert backend.consecutive_failures == 0
        assert backend._failopen_reported is False

    def test_scheduler_survives_dead_backend(self, dead):
        """A sweep against a dead daemon degrades to local simulation."""
        from repro.evaluation.runner import RunScheduler
        scheduler = RunScheduler(jobs=1, cache=RunCache(backend=dead))
        result = scheduler.run(liquid_request())
        assert result.cycles > 0
        assert scheduler.stats.executed == 1


class TestProtocolHygiene:
    def test_bad_keys_rejected(self, server):
        backend = _http(server)
        for bad in ("short", "../../etc/passwd", "Z" * 64, KEY_A[:-1] + "G"):
            assert backend.load(bad) is None
            assert backend.store(bad, b"x") is False
        assert server.backend.entry_paths() is not None
        assert sum(1 for _ in server.backend.entry_paths()) == 0

    def test_probe_filters_bad_keys(self, server):
        server.backend.store(KEY_A, b"x")
        present = _http(server).contains_many(
            [KEY_A, "../../sneaky", "not-a-key"])
        assert present == {KEY_A}

    def test_stats_identifies_service(self, server):
        info = _http(server).describe()
        assert info["reachable"] is True
        assert info["format_version"] == CACHE_FORMAT_VERSION

    def test_wrong_service_reads_unreachable(self):
        """--cache-url pointed at some unrelated HTTP server must read
        as unreachable, not corrupt probes with bogus answers."""
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class Impostor(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def do_GET(self):
                body = json.dumps({"service": "something-else"}).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        httpd = HTTPServer(("127.0.0.1", 0), Impostor)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            info = HTTPCacheBackend(f"http://{host}:{port}").describe()
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert info["reachable"] is False
        assert SERVICE_NAME not in (None, "something-else")

    def test_stats_counts_entries_and_bytes(self, server):
        backend = _http(server)
        backend.store(KEY_A, b"four")
        backend.store(KEY_B, b"bytes!")
        info = backend.describe()
        assert info["entries"] == 2
        assert info["size_bytes"] == len(b"four") + len(b"bytes!")
        assert json.loads(json.dumps(info)) == info
