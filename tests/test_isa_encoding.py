"""Tests for binary encoding: round-trips and architectural size accounting."""

import pytest

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.isa.assembler import assemble
from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    encoded_size,
)
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm

from conftest import simple_kernel


_SAMPLES = [
    Instruction("nop"),
    Instruction("halt"),
    Instruction("mov", dst=Reg("r0"), srcs=(Imm(0),)),
    Instruction("fmov", dst=Reg("f1"), srcs=(Imm(2.5),)),
    Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Imm(-7))),
    Instruction("cmp", srcs=(Reg("r0"), Imm(128))),
    Instruction("blt", target="loop"),
    Instruction("bl", target="fn"),
    Instruction("ldf", dst=Reg("f0"),
                mem=Mem(base=Sym("A"), index=Reg("r0")), elem="f32"),
    Instruction("stw", srcs=(Reg("r3"),),
                mem=Mem(base=Reg("r4"), index=Imm(2)), elem="i32"),
    Instruction("vadd", dst=Reg("v1"), srcs=(Reg("v2"), Reg("v3")), elem="i16"),
    Instruction("vand", dst=Reg("vf1"),
                srcs=(Reg("vf2"), VImm((0, -1, 0, -1))), elem="f32"),
    Instruction("vmul", dst=Reg("vf1"),
                srcs=(Reg("vf2"), VImm((0.5, 1.5))), elem="f32"),
    Instruction("vbfly", dst=Reg("vf1"), srcs=(Reg("vf1"), Imm(8)), elem="f32"),
    Instruction("vredsum", dst=Reg("f1"), srcs=(Reg("f1"), Reg("vf3")),
                elem="f32"),
]


class TestInstructionRoundTrip:
    @pytest.mark.parametrize("instr", _SAMPLES, ids=lambda i: str(i)[:30])
    def test_roundtrip(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr


class TestProgramRoundTrip:
    def test_assembled_program_roundtrips(self):
        program = assemble("""
        .data A f32 8 = 1.0
        .rodata K i32 = 1, -2, 3
        main:
            mov r0, #0
        loop:
            ldf f0, [A + r0]
            fmul f0, f0, #2.0
            stf f0, [A + r0]
            add r0, r0, #1
            cmp r0, #8
            blt loop
            halt
        """)
        clone = decode_program(encode_program(program))
        assert clone.instructions == program.instructions
        assert clone.labels == program.labels
        assert clone.entry == program.entry
        assert clone.data["K"].read_only
        assert clone.data["A"].values == program.data["A"].values

    def test_liquid_program_roundtrips(self):
        program = build_liquid_program(simple_kernel())
        clone = decode_program(encode_program(program))
        assert clone.instructions == program.instructions
        assert clone.outlined_functions == program.outlined_functions

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_program(b"NOPE" + b"\x00" * 32)


class TestArchitecturalSize:
    def test_code_is_four_bytes_per_instruction(self):
        program = assemble("nop\nnop\nnop")
        assert encoded_size(program) == 3 * INSTRUCTION_BYTES

    def test_data_counted(self):
        program = assemble(".data A i16 10\nnop")
        assert encoded_size(program) == 4 + 20

    def test_mvl_alignment_pads_arrays(self):
        program = assemble(".data A i16 10\nnop")
        # 10 elements pad to 16 under MVL=16.
        assert encoded_size(program, mvl=16) == 4 + 16 * 2

    def test_alignment_is_one_source_of_liquid_overhead(self):
        kernel = simple_kernel()
        baseline = build_baseline_program(kernel)
        liquid = build_liquid_program(kernel)
        # Same data; liquid adds the blo/ret pair.
        assert encoded_size(liquid, mvl=16) > encoded_size(baseline, mvl=1)
