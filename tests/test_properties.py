"""Property-based tests (hypothesis).

The headline property is the paper's central correctness claim: for any
SIMD loop expressible in the IR, the scalar representation, the native
SIMD execution, and the dynamically translated execution all leave
bit-identical results in memory — "no information is lost during this
conversion" (section 2).  Kernels are generated randomly over loads,
stores, data-parallel ops, saturating idioms, permutations, and
reductions, then run through every path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import arith
from repro.core.scalarize import (
    Kernel,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
)
from repro.isa.encoding import decode_instruction, encode_instruction
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym
from repro.isa.program import DataArray
from repro.kernels.dsl import LoopBuilder
from repro.memory.cache import Cache, CacheConfig
from repro.simd.permutations import PermPattern, PermutationCAM
from repro.system.metrics import arrays_equal

from conftest import run_program

# ---------------------------------------------------------------------------
# Arithmetic invariants
# ---------------------------------------------------------------------------

int32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


class TestArithProperties:
    @given(int32, st.sampled_from(["i8", "i16", "i32"]))
    def test_wrap_is_idempotent(self, value, elem):
        once = arith.wrap_int(value, elem)
        assert arith.wrap_int(once, elem) == once
        lo, hi = arith.INT_BOUNDS[elem]
        assert lo <= once <= hi

    @given(small_ints, small_ints, st.sampled_from(["i8", "i16"]))
    def test_qadd_is_clamped_and_commutative(self, a, b, elem):
        lo, hi = arith.INT_BOUNDS[elem]
        result = arith.qadd(a, b, elem)
        assert lo <= result <= hi
        assert result == arith.qadd(b, a, elem)

    @given(small_ints, small_ints, small_ints, st.sampled_from(["i8", "i16"]))
    def test_qadd_monotone_in_first_argument(self, a1, a2, b, elem):
        if a1 <= a2:
            assert arith.qadd(a1, b, elem) <= arith.qadd(a2, b, elem)

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_float_ops_round_like_numpy32(self, a, b):
        import numpy as np
        assert arith.float_op("fadd", a, b) == float(
            np.float32(np.float32(a) + np.float32(b))
        )

    @given(st.floats(-1e20, 1e20, allow_nan=False))
    def test_float_bits_roundtrip(self, value):
        assert arith.bits_float(arith.float_bits(value)) == arith.f32(value)


# ---------------------------------------------------------------------------
# Permutation invariants
# ---------------------------------------------------------------------------

def pattern_strategy():
    kinds = st.sampled_from(["bfly", "rev", "rot"])
    periods = st.sampled_from([2, 4, 8, 16])

    def build(kind, period, amount):
        if kind == "rot":
            return PermPattern(kind, period, 1 + amount % (period - 1)) \
                if period > 2 else PermPattern("rot", 2, 1)
        return PermPattern(kind, period)

    return st.builds(build, kinds, periods, st.integers(0, 15))


class TestPermutationProperties:
    @given(pattern_strategy(), st.sampled_from([16, 32]))
    def test_apply_is_a_permutation(self, pattern, width):
        lanes = list(range(width))
        result = pattern.apply(lanes)
        assert sorted(result) == lanes

    @given(pattern_strategy(), st.sampled_from([16, 32]))
    def test_inverse_undoes(self, pattern, width):
        lanes = list(range(width))
        assert pattern.inverse().apply(pattern.apply(lanes)) == lanes

    @given(pattern_strategy())
    def test_offsets_are_periodic(self, pattern):
        offsets = pattern.offsets(64)
        period = pattern.period
        assert offsets == offsets[:period] * (64 // period)

    @given(pattern_strategy())
    def test_cam_recognizes_own_signature(self, pattern):
        width = max(16, pattern.period)
        # Include the generated pattern in the accelerator repertoire (the
        # standard repertoire carries only +/-1 rotations).
        from repro.simd.permutations import STANDARD_PATTERNS
        cam = PermutationCAM(width, STANDARD_PATTERNS + (pattern,))
        hit = cam.lookup(pattern.offsets(width))
        assert hit is not None
        # Signatures are unique up to lane-map equality.
        assert hit.lane_map(width) == pattern.lane_map(width)


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
    def test_second_access_to_line_always_hits(self, addresses):
        cache = Cache(CacheConfig(size_bytes=16 * 1024, assoc=64,
                                  line_bytes=32, miss_penalty=30))
        for addr in addresses:
            lines = (addr + 3) // 32 - addr // 32 + 1
            cache.access(addr)
            assert cache.access(addr) == lines * cache.config.hit_latency

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_stats_are_consistent(self, addresses):
        cache = Cache(CacheConfig())
        for addr in addresses:
            cache.access(addr, is_write=addr % 3 == 0)
        stats = cache.stats
        assert stats.accesses == stats.reads + stats.writes
        assert 0 <= stats.misses <= stats.accesses
        assert 0.0 <= stats.miss_rate <= 1.0


# ---------------------------------------------------------------------------
# Encoding round-trip
# ---------------------------------------------------------------------------

def instruction_strategy():
    regs = st.sampled_from(["r0", "r3", "f2", "v4", "vf5"])
    imms = st.one_of(st.integers(-1 << 30, 1 << 30).map(Imm),
                     st.floats(-100, 100).map(Imm))
    operands = st.one_of(regs.map(Reg), imms)

    def build(opcode, dst, srcs, with_mem, elem):
        mem = Mem(base=Sym("A"), index=Reg("r0")) if with_mem else None
        return Instruction(opcode, dst=Reg(dst), srcs=tuple(srcs), mem=mem,
                           elem=elem)

    return st.builds(
        build,
        st.sampled_from(["add", "fmul", "vadd", "vqsub", "mov"]),
        regs,
        st.lists(operands, max_size=2),
        st.booleans(),
        st.sampled_from([None, "i8", "i16", "i32", "f32"]),
    )


class TestEncodingProperties:
    @given(instruction_strategy())
    def test_instruction_roundtrip(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr


# ---------------------------------------------------------------------------
# The headline property: scalar == native SIMD == translated SIMD
# ---------------------------------------------------------------------------

_FLOAT_BIN = ["add", "sub", "mul", "min", "max"]
_INT_BIN = ["add", "sub", "min", "max", "qadd", "qsub", "abd"]


@st.composite
def kernel_strategy(draw):
    """A random but always-valid SIMD loop over two input arrays."""
    elem = draw(st.sampled_from(["f32", "i16"]))
    trip = draw(st.sampled_from([16, 32]))
    n_ops = draw(st.integers(2, 6))
    use_perm = draw(st.booleans())
    use_reduce = draw(st.booleans())

    builder = LoopBuilder("hot", trip=trip, elem=elem)
    a = builder.load("in_a")
    b = builder.load("in_b")
    values = [a, b]

    for i in range(n_ops):
        op_pool = _FLOAT_BIN if elem == "f32" else _INT_BIN
        choice = draw(st.sampled_from(op_pool))
        x = draw(st.sampled_from(values))
        use_imm = draw(st.booleans()) and choice not in ("abd",)
        if use_imm:
            imm = builder.imm(draw(st.sampled_from([2.0, 0.5, -1.5])) if
                              elem == "f32" else draw(st.sampled_from([2, 3, -5])))
            operand = imm
        else:
            operand = draw(st.sampled_from(values))
        values.append(builder.binary(choice, x, operand))

    result = values[-1]
    if use_perm:
        period = draw(st.sampled_from([2, 4]))
        kind = draw(st.sampled_from(["bfly", "rev"]))
        result = getattr(builder, kind)(result, period)
    builder.store("out", result)
    if use_reduce:
        acc = "f1" if elem == "f32" else "r1"
        builder.reduce(draw(st.sampled_from(["sum", "min", "max"])),
                       values[-1], acc=acc, init=0,
                       store_to="red_out")

    if elem == "f32":
        in_a = [round((i * 7 % 13) * 0.07 - 0.4, 3) for i in range(trip)]
        in_b = [round((i * 5 % 11) * 0.09 - 0.5, 3) for i in range(trip)]
        out_elem = "f32"
    else:
        in_a = [(i * 7) % 25 - 12 for i in range(trip)]
        in_b = [(i * 11) % 19 - 9 for i in range(trip)]
        out_elem = elem
    return Kernel(
        name="prop",
        arrays=[
            DataArray("in_a", elem, in_a),
            DataArray("in_b", elem, in_b),
            DataArray("out", out_elem, [0] * trip),
            DataArray("red_out", "f32" if elem == "f32" else "i32", [0]),
        ],
        stages=[builder.build()],
        schedule=["hot"],
        repeats=3,
    )


class TestEndToEndEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(kernel_strategy(), st.sampled_from([4, 8]))
    def test_all_execution_paths_agree(self, kernel, width):
        baseline = build_baseline_program(kernel)
        liquid = build_liquid_program(kernel)
        native = build_native_program(kernel, width=width)
        r_base = run_program(baseline)
        r_liquid = run_program(liquid, width=width)
        r_native = run_program(native, width=width)
        assert arrays_equal(r_base, r_liquid), "liquid diverged from scalar"
        assert arrays_equal(r_base, r_native), "native diverged from scalar"

    @settings(max_examples=15, deadline=None)
    @given(kernel_strategy())
    def test_liquid_binary_is_width_portable(self, kernel):
        """One Liquid binary must produce identical results on every
        accelerator generation — the paper's binary-compatibility claim."""
        liquid = build_liquid_program(kernel)
        reference = run_program(liquid)  # pure scalar machine
        for width in (2, 4, 8, 16):
            result = run_program(liquid, width=width)
            assert arrays_equal(reference, result), f"width {width} diverged"


class TestCrossCompilerProperty:
    @settings(max_examples=15, deadline=None)
    @given(kernel_strategy())
    def test_cross_compiling_the_baseline_is_equivalent(self, kernel):
        """The baseline binary's inlined loops are in canonical scalar
        form, so the post-compilation cross-compiler must be able to
        outline them — and the result must stay bit-identical whether it
        translates or aborts."""
        from repro.core.scalarize.crosscompile import cross_compile
        baseline = build_baseline_program(kernel)
        liquid = cross_compile(baseline)
        reference = run_program(baseline)
        for width in (4, 8):
            result = run_program(liquid, width=width)
            assert arrays_equal(reference, result), f"width {width}"

    @settings(max_examples=10, deadline=None)
    @given(kernel_strategy())
    def test_cross_compiler_finds_at_least_the_simple_loops(self, kernel):
        from repro.core.scalarize.crosscompile import find_candidate_loops
        baseline = build_baseline_program(kernel)
        # Every kernel has at least one canonical loop per segment.
        assert len(find_candidate_loops(baseline)) >= 1


class TestIdiomModeProperty:
    @settings(max_examples=15, deadline=None)
    @given(kernel_strategy(), st.sampled_from([4, 8]))
    def test_minmax_idiom_mode_is_equivalent(self, kernel, width):
        """Emitting cmp/conditional-move idioms instead of min/max
        pseudo-ops must not change results on any path."""
        baseline = build_baseline_program(kernel, minmax_idioms=True)
        liquid = build_liquid_program(kernel, minmax_idioms=True)
        plain = build_baseline_program(kernel)
        r_plain = run_program(plain)
        r_base = run_program(baseline)
        r_liquid = run_program(liquid, width=width)
        assert arrays_equal(r_plain, r_base)
        assert arrays_equal(r_plain, r_liquid)


class TestVerifierProperty:
    @settings(max_examples=10, deadline=None)
    @given(kernel_strategy())
    def test_oracle_accepts_every_real_translation(self, kernel):
        """The verification replay must never reject a translation the
        (correct) translator produced."""
        liquid = build_liquid_program(kernel)
        plain = run_program(liquid, width=8)
        verified = run_program(liquid, width=8, verify_translations=True)
        assert plain.successful_translations == \
            verified.successful_translations
        assert arrays_equal(plain, verified)
