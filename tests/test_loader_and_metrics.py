"""Tests for the loader, symbol table, and run-result metrics."""

import pytest

from repro.interp.state import SymbolInfo, SymbolTable
from repro.isa.assembler import assemble
from repro.memory.memory import MemoryProtectionError
from repro.system.loader import DATA_BASE, load_program, snapshot_arrays
from repro.system.metrics import FunctionStats, array_mismatches, arrays_equal

from conftest import run_program, simple_kernel
from repro.core.scalarize import build_baseline_program


class TestSymbolTable:
    def test_add_lookup(self):
        table = SymbolTable()
        table.add(SymbolInfo("A", 0x100, "f32", 8))
        assert table.address_of("A") == 0x100
        assert "A" in table
        assert "B" not in table

    def test_duplicate_rejected(self):
        table = SymbolTable()
        table.add(SymbolInfo("A", 0x100, "f32", 8))
        with pytest.raises(ValueError):
            table.add(SymbolInfo("A", 0x200, "f32", 8))

    def test_missing_symbol(self):
        with pytest.raises(KeyError):
            SymbolTable().lookup("nope")


class TestLoader:
    PROGRAM = """
    .data A f32 10 = 1.5
    .rodata K i32 = 7, 8, 9
    .data B i8 3 = 1, 2, 3
    main:
        halt
    """

    def test_data_placed_and_readable(self):
        program = assemble(self.PROGRAM)
        memory, symbols = load_program(program, mvl=16)
        a = symbols.lookup("A")
        assert memory.load(a.addr, "f32") == 1.5
        k = symbols.lookup("K")
        assert memory.load_vector(k.addr, "i32", 3) == [7, 8, 9]

    def test_arrays_aligned_to_mvl(self):
        program = assemble(self.PROGRAM)
        _, symbols = load_program(program, mvl=16)
        assert symbols.address_of("A") % (16 * 4) == 0
        assert symbols.address_of("K") % (16 * 4) == 0
        assert symbols.address_of("B") % 32 == 0  # at least line-aligned

    def test_data_base(self):
        program = assemble(self.PROGRAM)
        _, symbols = load_program(program)
        assert symbols.address_of("A") >= DATA_BASE

    def test_read_only_arrays_protected(self):
        program = assemble(self.PROGRAM)
        memory, symbols = load_program(program)
        with pytest.raises(MemoryProtectionError):
            memory.store(symbols.address_of("K"), "i32", 0)

    def test_snapshot_excludes_read_only(self):
        program = assemble(self.PROGRAM)
        memory, symbols = load_program(program)
        snap = snapshot_arrays(program, memory, symbols)
        assert set(snap) == {"A", "B"}
        assert snap["B"] == [1, 2, 3]


class TestMetrics:
    def test_call_distance(self):
        stats = FunctionStats("f")
        assert stats.first_two_call_distance is None
        stats.call_cycles = [100, 350, 600]
        assert stats.first_two_call_distance == 250

    def test_arrays_equal_and_mismatches(self):
        kernel = simple_kernel(calls=2)
        program = build_baseline_program(kernel)
        a = run_program(program)
        b = run_program(program)
        assert arrays_equal(a, b)
        assert array_mismatches(a, b) == []

    def test_arrays_equal_detects_differences(self):
        kernel = simple_kernel(calls=2)
        program = build_baseline_program(kernel)
        a = run_program(program)
        b = run_program(program)
        b.arrays["out"][3] += 1.0
        assert not arrays_equal(a, b)
        assert array_mismatches(a, b) == ["out"]

    def test_arrays_equal_with_tolerance(self):
        kernel = simple_kernel(calls=2)
        a = run_program(build_baseline_program(kernel))
        b = run_program(build_baseline_program(kernel))
        b.arrays["out"][0] += 1e-9
        assert not arrays_equal(a, b)
        assert arrays_equal(a, b, tolerance=1e-6)

    def test_speedup_over(self):
        kernel = simple_kernel(calls=2)
        base = run_program(build_baseline_program(kernel))
        assert base.speedup_over(base) == 1.0

    def test_abort_counts(self):
        from conftest import perm_kernel
        from repro.core.scalarize import build_liquid_program
        from repro.core.translate.translator import AbortReason
        kernel = perm_kernel(calls=3, period=8)
        result = run_program(build_liquid_program(kernel), width=4)
        counts = result.abort_counts
        assert counts[AbortReason.UNSUPPORTED_PATTERN] == 1
