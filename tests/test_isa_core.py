"""Unit tests for instructions, opcodes, and the Program container."""

import pytest

from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import (
    ELEM_SIZES,
    LOAD_ELEM,
    LOAD_FOR_ELEM,
    OPCODES,
    STORE_ELEM,
    STORE_FOR_ELEM,
    InstrClass,
    is_branch,
    is_call,
    is_conditional_branch,
    is_load,
    is_store,
    is_vector_op,
    spec,
)
from repro.isa.program import DataArray, Program, copy_program


class TestInstructionModel:
    def test_reads_collects_sources_and_address_regs(self):
        instr = Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Reg("r3")))
        assert instr.reads() == ("r2", "r3")
        assert instr.writes() == ("r1",)

    def test_reads_includes_memory_operands(self):
        instr = Instruction("ldw", dst=Reg("r1"),
                            mem=Mem(base=Reg("r4"), index=Reg("r5")))
        assert set(instr.reads()) == {"r4", "r5"}

    def test_sym_base_not_a_register_read(self):
        instr = Instruction("ldw", dst=Reg("r1"),
                            mem=Mem(base=Sym("A"), index=Reg("r0")))
        assert instr.reads() == ("r0",)

    def test_store_has_no_writes(self):
        instr = Instruction("stw", srcs=(Reg("r2"),),
                            mem=Mem(base=Sym("A"), index=Reg("r0")))
        assert instr.writes() == ()

    def test_immutable(self):
        instr = Instruction("nop")
        with pytest.raises(Exception):
            instr.opcode = "halt"

    def test_with_comment(self):
        instr = Instruction("nop").with_comment("hello")
        assert instr.comment == "hello"
        assert instr.opcode == "nop"

    def test_format_scalar(self):
        instr = Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Imm(3)))
        assert str(instr) == "add r1, r2, #3"

    def test_format_vector_with_elem(self):
        instr = Instruction("vadd", dst=Reg("v1"), srcs=(Reg("v2"), Reg("v3")),
                            elem="i16")
        assert str(instr).startswith("vadd.i16 v1, v2, v3")

    def test_format_memory(self):
        instr = Instruction("ldf", dst=Reg("f0"),
                            mem=Mem(base=Sym("A"), index=Reg("r0")))
        assert "[A + r0]" in str(instr)

    def test_format_vimm(self):
        instr = Instruction("vand", dst=Reg("v1"),
                            srcs=(Reg("v2"), VImm((1, 2))), elem="i32")
        assert "#<1,2>" in str(instr)


class TestOpcodeTable:
    def test_all_specs_have_matching_names(self):
        for name, op_spec in OPCODES.items():
            assert op_spec.name == name

    def test_class_predicates(self):
        assert is_load("ldw") and is_load("vld")
        assert is_store("stb") and is_store("vst")
        assert is_branch("blt") and not is_branch("bl")
        assert is_conditional_branch("bge") and not is_conditional_branch("b")
        assert is_call("bl") and is_call("blo")
        assert is_vector_op("vqadd") and not is_vector_op("add")

    def test_flag_metadata(self):
        assert OPCODES["cmp"].sets_flags
        assert OPCODES["movgt"].reads_flags
        assert not OPCODES["mov"].reads_flags
        assert OPCODES["beq"].reads_flags

    def test_spec_lookup(self):
        assert spec("mul").cls is InstrClass.MUL
        with pytest.raises(KeyError):
            spec("frobnicate")

    def test_elem_tables_consistent(self):
        for elem, size in ELEM_SIZES.items():
            assert size in (1, 2, 4)
            assert LOAD_FOR_ELEM[elem] in LOAD_ELEM
            assert STORE_FOR_ELEM[elem] in STORE_ELEM

    def test_load_elem_signedness(self):
        assert LOAD_ELEM["ldb"] == ("i8", True)
        assert LOAD_ELEM["ldub"] == ("i8", False)
        assert LOAD_ELEM["ldf"] == ("f32", True)

    def test_conditional_moves_exist_for_all_conditions(self):
        for cond in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert f"mov{cond}" in OPCODES
            assert f"fmov{cond}" in OPCODES
            assert f"b{cond}" in OPCODES


class TestProgram:
    def _program(self) -> Program:
        program = Program("p")
        program.mark_label("main")
        program.emit(Instruction("mov", dst=Reg("r0"), srcs=(Imm(0),)))
        program.mark_label("fn")
        program.emit(Instruction("nop"))
        program.emit(Instruction("ret"))
        return program

    def test_labels_and_lookup(self):
        program = self._program()
        assert program.label_index("main") == 0
        assert program.label_index("fn") == 1
        with pytest.raises(KeyError):
            program.label_index("nope")

    def test_duplicate_label_rejected(self):
        program = self._program()
        with pytest.raises(ValueError):
            program.mark_label("main")

    def test_function_body(self):
        program = self._program()
        body = program.function_body("fn")
        assert len(body) == 2
        assert body[-1].opcode == "ret"

    def test_function_body_without_ret_raises(self):
        program = Program("p")
        program.mark_label("f")
        program.emit(Instruction("nop"))
        with pytest.raises(ValueError):
            program.function_body("f")

    def test_data_arrays(self):
        program = Program("p")
        arr = program.add_array(DataArray("A", "f32", [1.0, 2.0]))
        assert arr.size_bytes == 8
        assert len(program.data["A"]) == 2
        with pytest.raises(ValueError):
            program.add_array(DataArray("A", "f32", [0.0]))

    def test_data_array_rejects_bad_elem(self):
        with pytest.raises(ValueError):
            DataArray("A", "f64", [0.0])

    def test_unique_names(self):
        program = Program("p")
        program.add_array(DataArray("tmp", "i32", [0]))
        assert program.unique_symbol("tmp") == "tmp_1"
        program.mark_label("L")
        assert program.unique_label("L") == "L_1"
        assert program.unique_label("M") == "M"

    def test_listing_mentions_labels_and_data(self):
        program = self._program()
        program.add_array(DataArray("A", "i16", [1, 2, 3], read_only=True))
        listing = program.listing()
        assert "main:" in listing and "fn:" in listing
        assert "read-only" in listing

    def test_copy_program_isolates_data(self):
        program = self._program()
        program.add_array(DataArray("A", "i32", [1, 2]))
        clone = copy_program(program)
        clone.data["A"].values[0] = 99
        assert program.data["A"].values[0] == 1
        assert clone.labels == program.labels
