"""Unit tests for the functional executor (scalar and vector semantics)."""

import pytest

from repro.interp.executor import (ExecutionError, Executor, FastExecutor,
                                   make_executor)
from repro.interp.state import MachineState, SymbolInfo, SymbolTable
from repro.isa.assembler import assemble
from repro.isa.decoded import predecode
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import OPCODES
from repro.isa.program import Program
from repro.memory.memory import Memory


def make_state(source: str, width=None, data_base: int = 0x400):
    """Assemble *source*, place its data, return (state, executor)."""
    program = assemble(source)
    memory = Memory(1 << 16)
    symbols = SymbolTable()
    addr = data_base
    for arr in program.data.values():
        symbols.add(SymbolInfo(arr.name, addr, arr.elem, len(arr),
                               arr.read_only))
        if arr.values:
            memory.store_vector(addr, arr.elem, arr.values)
        addr += max(arr.size_bytes, 64)
    state = MachineState(program, memory, symbols, vector_width=width)
    return state, Executor(state)


def run(state, executor, max_steps=10000):
    steps = 0
    while not state.halted:
        executor.execute(state.program.instructions[state.pc])
        steps += 1
        assert steps < max_steps, "runaway program"
    return state


class TestScalarExecution:
    def test_mov_and_alu(self):
        state, ex = make_state("""
            mov r1, #6
            mov r2, #7
            mul r3, r1, r2
            halt
        """)
        run(state, ex)
        assert state.regs.read("r3") == 42

    def test_conditional_move_taken_and_not(self):
        state, ex = make_state("""
            mov r1, #5
            cmp r1, #3
            movgt r2, #1
            movlt r3, #1
            halt
        """)
        run(state, ex)
        assert state.regs.read("r2") == 1
        assert state.regs.read("r3") == 0

    def test_float_ops(self):
        state, ex = make_state("""
            fmov f1, #1.5
            fmov f2, #2.0
            fmul f3, f1, f2
            fneg f4, f3
            fabs f5, f4
            halt
        """)
        run(state, ex)
        assert state.regs.read("f3") == 3.0
        assert state.regs.read("f4") == -3.0
        assert state.regs.read("f5") == 3.0

    def test_loop_with_branch(self):
        state, ex = make_state("""
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #5
            blt loop
            halt
        """)
        run(state, ex)
        assert state.regs.read("r0") == 5

    def test_load_store_elements_scaled(self):
        state, ex = make_state("""
        .data A i16 4 = 10, 20, 30, 40
        .data B i16 4 = 0
            mov r0, #2
            ldh r1, [A + r0]
            sth r1, [B + r0]
            halt
        """)
        run(state, ex)
        b_addr = state.symbols.address_of("B")
        assert state.memory.load(b_addr + 4, "i16") == 30

    def test_byte_load_sign_extends(self):
        state, ex = make_state("""
        .data A i8 2 = -1, 1
            mov r0, #0
            ldb r1, [A + r0]
            halt
        """)
        run(state, ex)
        assert state.regs.read("r1") == -1

    def test_call_and_return(self):
        state, ex = make_state("""
        .entry main
        main:
            bl fn
            mov r2, #2
            halt
        fn:
            mov r1, #1
            ret
        """)
        run(state, ex)
        assert state.regs.read("r1") == 1
        assert state.regs.read("r2") == 2

    def test_float_mask_idiom(self):
        # `and f, f, rmask` operates on the binary32 bit pattern.
        state, ex = make_state("""
            fmov f1, #2.5
            mov r2, #0
            and f3, f1, r2
            fmov f4, #3.5
            orr f5, f3, f4
            halt
        """)
        run(state, ex)
        assert state.regs.read("f3") == 0.0
        assert state.regs.read("f5") == 3.5

    def test_min_max_pseudo_ops(self):
        state, ex = make_state("""
            mov r1, #-5
            mov r2, #3
            min r3, r1, r2
            max r4, r1, r2
            halt
        """)
        run(state, ex)
        assert state.regs.read("r3") == -5
        assert state.regs.read("r4") == 3

    def test_event_fields(self):
        state, ex = make_state(".data A i32 1 = 7\nmov r0, #0\nldw r1, [A + r0]\nhalt")
        ex.execute(state.program.instructions[0])
        event = ex.execute(state.program.instructions[1])
        assert event.value == 7
        assert event.mem_addr == state.symbols.address_of("A")
        assert event.pc == 1 and event.next_pc == 2

    def test_int_op_on_float_register_rejected(self):
        state, ex = make_state("fmov f1, #1.0\nmov r2, #1\nadd f3, f1, r2\nhalt")
        ex.execute(state.program.instructions[0])
        ex.execute(state.program.instructions[1])
        with pytest.raises(ExecutionError):
            ex.execute(state.program.instructions[2])


class TestVectorExecution:
    def test_vector_requires_accelerator(self):
        state, ex = make_state(".data A f32 8 = 1.0\nmov r0, #0\n"
                               "vld.f32 vf0, [A + r0]\nhalt")
        ex.execute(state.program.instructions[0])
        with pytest.raises(ExecutionError):
            ex.execute(state.program.instructions[1])

    def test_vld_vst_roundtrip(self):
        state, ex = make_state("""
        .data A f32 8 = 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
        .data B f32 8 = 0.0
            mov r0, #0
            vld.f32 vf0, [A + r0]
            vst.f32 vf0, [B + r0]
            halt
        """, width=4)
        run(state, ex)
        addr = state.symbols.address_of("B")
        assert state.memory.load_vector(addr, "f32", 4) == [1.0, 2.0, 3.0, 4.0]

    def test_vector_binary_and_imm(self):
        state, ex = make_state("""
        .data A i32 4 = 1, 2, 3, 4
            mov r0, #0
            vld.i32 v2, [A + r0]
            vadd.i32 v3, v2, #10
            vmul.i32 v4, v3, v2
            halt
        """, width=4)
        run(state, ex)
        assert state.vregs.read("v3") == [11, 12, 13, 14]
        assert state.vregs.read("v4") == [11, 24, 39, 56]

    def test_vector_immediate_operand(self):
        state, ex = make_state("""
        .data A i32 4 = 7, 7, 7, 7
            mov r0, #0
            vld.i32 v2, [A + r0]
            vand.i32 v3, v2, #<1, 3, 7, 0>
            halt
        """, width=4)
        run(state, ex)
        assert state.vregs.read("v3") == [1, 3, 7, 0]

    def test_vimm_lane_count_enforced(self):
        state, ex = make_state("""
        .data A i32 4 = 1, 1, 1, 1
            mov r0, #0
            vld.i32 v2, [A + r0]
            vand.i32 v3, v2, #<1, 2>
            halt
        """, width=4)
        ex.execute(state.program.instructions[0])
        ex.execute(state.program.instructions[1])
        with pytest.raises(ExecutionError):
            ex.execute(state.program.instructions[2])

    def test_permutations(self):
        state, ex = make_state("""
        .data A i32 4 = 0, 1, 2, 3
            mov r0, #0
            vld.i32 v2, [A + r0]
            vbfly.i32 v3, v2, #4
            vrev.i32 v4, v2, #4
            vrot.i32 v5, v2, #4, #1
            halt
        """, width=4)
        run(state, ex)
        assert state.vregs.read("v3") == [2, 3, 0, 1]
        assert state.vregs.read("v4") == [3, 2, 1, 0]
        assert state.vregs.read("v5") == [1, 2, 3, 0]

    def test_perm_period_must_tile_width(self):
        state, ex = make_state("""
        .data A i32 4 = 0, 1, 2, 3
            mov r0, #0
            vld.i32 v2, [A + r0]
            vbfly.i32 v3, v2, #8
            halt
        """, width=4)
        ex.execute(state.program.instructions[0])
        ex.execute(state.program.instructions[1])
        with pytest.raises(ExecutionError):
            ex.execute(state.program.instructions[2])

    def test_reduction_into_scalar(self):
        state, ex = make_state("""
        .data A i32 4 = 1, 2, 3, 4
            mov r0, #0
            mov r1, #100
            vld.i32 v2, [A + r0]
            vredsum.i32 r1, r1, v2
            halt
        """, width=4)
        run(state, ex)
        assert state.regs.read("r1") == 110

    def test_unaligned_vector_access_rejected(self):
        state, ex = make_state("""
        .data A f32 8 = 1.0
            mov r0, #1
            vld.f32 vf0, [A + r0]
            halt
        """, width=4)
        ex.execute(state.program.instructions[0])
        with pytest.raises(ExecutionError):
            ex.execute(state.program.instructions[1])

    def test_vector_event_reports_width(self):
        state, ex = make_state("""
        .data A f32 8 = 1.0
            mov r0, #0
            vld.f32 vf0, [A + r0]
            halt
        """, width=8)
        ex.execute(state.program.instructions[0])
        event = ex.execute(state.program.instructions[1])
        assert event.vector_width == 8

    def test_saturating_vector_ops(self):
        state, ex = make_state("""
        .data A i8 4 = 120, -120, 5, 0
        .data B i8 4 = 100, -100, 5, 0
            mov r0, #0
            vld.i8 v2, [A + r0]
            vld.i8 v3, [B + r0]
            vqadd.i8 v4, v2, v3
            halt
        """, width=4)
        run(state, ex)
        assert state.vregs.read("v4") == [127, -128, 10, 0]


# ---------------------------------------------------------------------------
# Dispatch error paths (both engines)
#
# The assembler rejects unknown opcodes outright, so these tests build
# Instruction/Program objects by hand to reach the interpreter's own
# guards.  Both engines must raise ExecutionError with the same message;
# the fast engine defers decode-time failures into handlers that raise
# at execution time (see repro.isa.decoded.predecode), so an unreachable
# bad instruction never aborts a run.
# ---------------------------------------------------------------------------


def make_raw_state(instructions, width=None):
    """Build a state over hand-constructed instructions (no assembler)."""
    program = Program(name="raw")
    program.labels["main"] = 0
    for ins in instructions:
        program.emit(ins)
    return MachineState(program, Memory(1 << 16), SymbolTable(),
                        vector_width=width)


class TestDispatchErrors:
    def test_unknown_opcode_reference(self):
        state = make_raw_state([
            Instruction("frobnicate", dst=Reg("r0"), srcs=(Imm(1),)),
        ])
        ex = Executor(state)
        with pytest.raises(ExecutionError,
                           match=r"unknown opcode 'frobnicate' at pc=0"):
            ex.execute(state.program.instructions[0])

    def test_unknown_opcode_fast(self):
        state = make_raw_state([
            Instruction("frobnicate", dst=Reg("r0"), srcs=(Imm(1),)),
        ])
        ex = make_executor(state, "fast")
        with pytest.raises(ExecutionError,
                           match=r"unknown opcode 'frobnicate' at pc=0"):
            ex.execute(state.program.instructions[0])

    def test_unknown_condition_suffix_both_engines(self, monkeypatch):
        # Register the opcode so dispatch reaches the condition decoder;
        # the suffix guard must still reject what _COND doesn't know.
        monkeypatch.setitem(OPCODES, "movxx", OPCODES["moveq"])
        match = r"unknown condition suffix 'xx' in opcode 'movxx'"
        for engine in ("reference", "fast"):
            state = make_raw_state([
                Instruction("movxx", dst=Reg("r0"), srcs=(Imm(1),)),
            ])
            ex = make_executor(state, engine)
            with pytest.raises(ExecutionError, match=match):
                ex.execute(state.program.instructions[0])

    def test_unknown_branch_condition_both_engines(self, monkeypatch):
        monkeypatch.setitem(OPCODES, "bxx", OPCODES["beq"])
        match = r"unknown branch condition 'xx' in opcode 'bxx'"
        for engine in ("reference", "fast"):
            state = make_raw_state([
                Instruction("bxx", target="main"),
            ])
            ex = make_executor(state, engine)
            with pytest.raises(ExecutionError, match=match):
                ex.execute(state.program.instructions[0])

    def test_predecode_defers_errors_to_execution(self):
        # A program with an unreachable bad instruction must predecode
        # cleanly and run to completion on the fast engine.
        state = make_raw_state([
            Instruction("halt"),
            Instruction("frobnicate"),  # never reached
        ])
        table = predecode(state.program)  # must not raise
        ex = FastExecutor(state, table)
        ex.execute(state.program.instructions[0])
        assert state.halted
        # Forcing execution of the bad pc raises the captured error.
        state.pc = 1
        with pytest.raises(ExecutionError,
                           match=r"unknown opcode 'frobnicate' at pc=1"):
            ex.execute(state.program.instructions[1])

    def test_make_executor_rejects_unknown_engine(self):
        state = make_raw_state([Instruction("halt")])
        with pytest.raises(ValueError, match="unknown engine"):
            make_executor(state, "warp")

    def test_unknown_engine_message_lists_engines(self):
        # The error must enumerate ENGINES dynamically, mirroring the
        # CLI's --engine choices.
        from repro.interp.executor import ENGINES
        state = make_raw_state([Instruction("halt")])
        with pytest.raises(ValueError) as excinfo:
            make_executor(state, "warp")
        message = str(excinfo.value)
        assert str(ENGINES) in message
        for engine in ENGINES:
            assert engine in message

    def test_fast_executor_rejects_foreign_table(self):
        state_a = make_raw_state([Instruction("halt")])
        state_b = make_raw_state([Instruction("halt")])
        table = predecode(state_a.program)
        with pytest.raises(ValueError, match="different program"):
            FastExecutor(state_b, table)
