"""Sharded sweep + incremental re-bench tests (docs/evaluation-runner.md).

The acceptance properties behind ``repro sweep``:

* the hash partition is deterministic, disjoint, and complete,
* a merged sharded sweep is byte-identical to the unsharded run
  (same per-key entry digests, same speedups) with zero duplicate
  machine-runs,
* ``--incremental`` on a warm cache costs zero machine-runs and one
  probe round-trip,
* the merge step actually rejects coverage gaps, divergent results,
  and duplicate simulations.
"""

import copy

import pytest

from repro.evaluation.cacheserver import CacheServer, HTTPCacheBackend
from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler
from repro.evaluation.shard import (
    ShardSpec,
    SweepError,
    merge_sweeps,
    parse_shard_spec,
    run_sweep,
    shard_for_key,
    sweep_keys,
    sweep_requests,
)
from repro.system.machine import Machine

BENCHMARKS = ["FIR"]
WIDTHS = (2, 4)


def _scheduler(tmp_path, subdir="cache"):
    return RunScheduler(jobs=1, cache=RunCache(tmp_path / subdir))


def _sweep(tmp_path, subdir="cache", **kwargs):
    return run_sweep(BENCHMARKS, WIDTHS,
                     scheduler=_scheduler(tmp_path, subdir), **kwargs)


class TestShardSpec:
    def test_parse_roundtrip(self):
        spec = parse_shard_spec("2/3")
        assert spec == ShardSpec(2, 3)
        assert str(spec) == "2/3"

    @pytest.mark.parametrize("bad", ["", "3", "0/2", "3/2", "a/b", "1/0",
                                     "-1/2", "1/2/3"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(SweepError):
            parse_shard_spec(bad)

    def test_partition_is_deterministic_disjoint_complete(self, tmp_path):
        keys = sweep_keys(sweep_requests(["FIR", "LU"], WIDTHS),
                          _scheduler(tmp_path))
        for count in (1, 2, 3, 5):
            owners = {key: shard_for_key(key, count) for key in keys}
            # Deterministic: a second assignment pass agrees exactly.
            assert owners == {k: shard_for_key(k, count) for k in keys}
            # Complete and disjoint: every key lands in exactly one
            # 1-based shard.
            assert all(1 <= owner <= count for owner in owners.values())

    def test_keys_are_stable_across_schedulers(self, tmp_path):
        a = sweep_keys(sweep_requests(BENCHMARKS, WIDTHS),
                       _scheduler(tmp_path, "a"))
        b = sweep_keys(sweep_requests(BENCHMARKS, WIDTHS),
                       _scheduler(tmp_path, "b"))
        assert set(a) == set(b), \
            "content addresses must not depend on the scheduler instance"


class TestShardedSweep:
    def test_sharded_equals_unsharded_byte_identical(self, tmp_path):
        full = _sweep(tmp_path, "full")
        shards = [_sweep(tmp_path, "shared", shard=ShardSpec(i, 2))
                  for i in (1, 2)]
        merged = merge_sweeps(shards)
        assert merged["entries"] == full["entries"], \
            "merged shard digests must be byte-identical to unsharded"
        assert merged["speedups"] == full["speedups"]

    def test_shards_simulate_disjoint_slices(self, tmp_path):
        shards = [_sweep(tmp_path, "shared", shard=ShardSpec(i, 2))
                  for i in (1, 2)]
        simulated = [
            {k for k, src in m["sources"].items() if src == "simulated"}
            for m in shards
        ]
        assert simulated[0] & simulated[1] == set(), \
            "no key may be simulated by two shards"
        total = sum(m["stats"]["machine_runs"] for m in shards)
        assert total == shards[0]["coverage"]["total_requests"], \
            "every machine-run must happen exactly once across the fleet"

    def test_incomplete_sweep_has_no_speedups(self, tmp_path):
        partial = _sweep(tmp_path, shard=ShardSpec(1, 2))
        assert "speedups" not in partial
        assert partial["coverage"]["selected"] < \
            partial["coverage"]["total_requests"]

    def test_shard_requires_cache(self):
        with pytest.raises(SweepError, match="no-cache"):
            run_sweep(BENCHMARKS, WIDTHS, scheduler=RunScheduler(jobs=1),
                      shard=ShardSpec(1, 2))


class TestIncremental:
    def test_warm_incremental_is_zero_machine_runs(self, tmp_path,
                                                   monkeypatch):
        cold = _sweep(tmp_path)
        calls = []
        real_run = Machine.run
        monkeypatch.setattr(
            Machine, "run",
            lambda self, program: calls.append(program.name)
            or real_run(self, program))
        warm = _sweep(tmp_path, incremental=True)
        assert calls == [], f"warm incremental sweep still simulated {calls}"
        assert warm["stats"]["machine_runs"] == 0
        assert warm["stats"]["cache_hits"] == \
            warm["coverage"]["total_requests"]
        assert warm["stats"]["probe_calls"] == 1, \
            "the whole sweep must be probed in one round-trip"
        assert warm["entries"] == cold["entries"]
        assert warm["speedups"] == cold["speedups"]

    def test_delta_simulates_only_misses(self, tmp_path):
        cold = _sweep(tmp_path)
        # Invalidate one entry; the incremental pass should pay exactly
        # that delta.
        scheduler = _scheduler(tmp_path)
        victim = next(iter(cold["entries"]))
        scheduler.cache.backend.delete(victim)
        warm = run_sweep(BENCHMARKS, WIDTHS, scheduler=scheduler,
                         incremental=True)
        assert warm["stats"]["machine_runs"] == 1
        assert warm["stats"]["cache_hits"] == \
            warm["coverage"]["total_requests"] - 1
        assert warm["entries"] == cold["entries"]

    def test_incremental_requires_cache(self):
        with pytest.raises(SweepError, match="incremental"):
            run_sweep(BENCHMARKS, WIDTHS, scheduler=RunScheduler(jobs=1),
                      incremental=True)


class TestMergeVerification:
    def _shards(self, tmp_path):
        return [_sweep(tmp_path, "shared", shard=ShardSpec(i, 2))
                for i in (1, 2)]

    def test_merge_rejects_empty(self):
        with pytest.raises(SweepError, match="nothing to merge"):
            merge_sweeps([])

    def test_merge_rejects_non_manifest(self):
        with pytest.raises(SweepError, match="not a sweep manifest"):
            merge_sweeps([{"kind": "something-else"}])

    def test_merge_rejects_mismatched_sweeps(self, tmp_path):
        shard1 = _sweep(tmp_path, "a", shard=ShardSpec(1, 2))
        other = run_sweep(["LU"], WIDTHS, scheduler=_scheduler(tmp_path, "b"),
                          shard=ShardSpec(2, 2))
        with pytest.raises(SweepError, match="different sweep"):
            merge_sweeps([shard1, other])

    def test_merge_rejects_coverage_gap(self, tmp_path):
        shards = self._shards(tmp_path)
        with pytest.raises(SweepError, match="cover"):
            merge_sweeps([shards[0]])

    def test_merge_rejects_divergent_results(self, tmp_path):
        shards = self._shards(tmp_path)
        forged = copy.deepcopy(shards)
        key = next(iter(forged[0]["entries"]))
        # Shard 2 claims the same key with different cycles/digest.
        forged[1]["entries"][key] = dict(forged[0]["entries"][key],
                                         cycles=1, digest="0" * 64)
        with pytest.raises(SweepError, match="diverge"):
            merge_sweeps(forged)

    def test_merge_rejects_duplicate_simulation(self, tmp_path):
        shards = self._shards(tmp_path)
        forged = copy.deepcopy(shards)
        key = next(k for k, s in forged[0]["sources"].items()
                   if s == "simulated")
        forged[1]["entries"][key] = forged[0]["entries"][key]
        forged[1]["sources"][key] = "simulated"
        with pytest.raises(SweepError, match="more than one"):
            merge_sweeps(forged)

    def test_merged_stats_aggregate(self, tmp_path):
        shards = self._shards(tmp_path)
        merged = merge_sweeps(shards)
        assert merged["stats"]["shards_merged"] == 2
        assert merged["stats"]["machine_runs"] == \
            sum(m["stats"]["machine_runs"] for m in shards)
        assert merged["stats"]["max_shard_wall_seconds"] <= \
            merged["stats"]["wall_seconds"]
        assert merged["sweep"]["shard"] is None


class TestSweepOverHTTP:
    def test_sharded_sweep_through_cache_daemon(self, tmp_path):
        """Two shards against one ``repro cache serve`` daemon behave
        exactly like two shards against one shared directory."""
        server = CacheServer(tmp_path / "served", port=0).start()
        try:
            shards = []
            for i in (1, 2):
                scheduler = RunScheduler(
                    jobs=1,
                    cache=RunCache(backend=HTTPCacheBackend(server.url)))
                shards.append(run_sweep(BENCHMARKS, WIDTHS,
                                        scheduler=scheduler,
                                        shard=ShardSpec(i, 2)))
            merged = merge_sweeps(shards)
        finally:
            server.shutdown()
        full = _sweep(tmp_path, "local")
        assert merged["entries"] == full["entries"], \
            "HTTP-backed shards must be byte-identical to local execution"
        assert merged["backend"]["backend"] == "http"

    def test_incremental_over_http_is_one_probe(self, tmp_path):
        server = CacheServer(tmp_path / "served", port=0).start()
        try:
            def scheduler():
                return RunScheduler(
                    jobs=1,
                    cache=RunCache(backend=HTTPCacheBackend(server.url)))
            run_sweep(BENCHMARKS, WIDTHS, scheduler=scheduler())
            posts_before = server.request_counts.get("POST", 0)
            warm = run_sweep(BENCHMARKS, WIDTHS, scheduler=scheduler(),
                             incremental=True)
        finally:
            server.shutdown()
        assert warm["stats"]["machine_runs"] == 0
        assert warm["stats"]["probe_calls"] == 1
        assert server.request_counts.get("POST", 0) == posts_before + 1
