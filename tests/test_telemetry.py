"""Unit and differential tests for the observability registry.

Covers the recording :class:`Telemetry` primitives (counters,
histograms, nested spans, JSON round-trip, merge, per-run markers), the
:class:`NullTelemetry` shim's API parity, and — the load-bearing
property — that enabling telemetry changes *nothing* about simulation
results: identical cycle counts, identical run-cache keys, and
byte-identical persisted cache entries.
"""

import json

import pytest

from repro.core.scalarize import build_liquid_program
from repro.evaluation.runcache import RunCache, run_key
from repro.kernels.suite import build_kernel
from repro.observability import telemetry
from repro.observability.telemetry import NullTelemetry, Telemetry
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig


@pytest.fixture(autouse=True)
def _restore_registry():
    """Every test leaves the process-wide registry disabled."""
    yield
    telemetry.disable()


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("a.b")
        t.count("a.b", 4)
        assert t.counters == {"a.b": 5}

    def test_observe_tracks_count_total_min_max(self):
        t = Telemetry()
        for v in (3, 1, 7):
            t.observe("h", v)
        assert t.histograms["h"] == [3, 11, 1, 7]

    def test_marker_delta(self):
        t = Telemetry()
        t.count("x", 2)
        mark = t.marker()
        t.count("x", 3)
        t.count("y")
        t.count("z", 0)  # created but unchanged: not in the delta
        assert t.delta_since(mark) == {"x": 3, "y": 1}


class TestSpans:
    def test_nesting_builds_dotted_paths(self):
        t = Telemetry()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert set(t.spans) == {"outer", "outer.inner"}
        assert t.spans["outer.inner"][0] == 2
        assert t.spans["outer"][0] == 1

    def test_out_of_order_exit_raises(self):
        t = Telemetry()
        outer, inner = t.span("outer"), t.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="innermost"):
            outer.__exit__(None, None, None)

    def test_record_span_accumulates(self):
        t = Telemetry()
        t.record_span("phase", 0.5)
        t.record_span("phase", 0.25)
        assert t.spans["phase"] == [2, 0.75]


class TestSerialization:
    def _populated(self) -> Telemetry:
        t = Telemetry()
        t.count("a", 3)
        t.count("b.c", 1)
        t.observe("h", 2.5)
        t.observe("h", 4.5)
        with t.span("s"):
            pass
        return t

    def test_json_round_trip(self):
        t = self._populated()
        wire = json.loads(json.dumps(t.to_dict()))
        assert Telemetry.from_dict(wire).to_dict() == t.to_dict()

    def test_merge_folds_everything(self):
        a, b = self._populated(), self._populated()
        a.merge(b)
        assert a.counters == {"a": 6, "b.c": 2}
        assert a.histograms["h"] == [4, 14.0, 2.5, 4.5]
        assert a.spans["s"][0] == 2

    def test_render_text_lists_counters(self):
        text = self._populated().render_text()
        assert "b.c" in text and "histograms" in text and "spans" in text


class TestNullShim:
    """The disabled registry accepts the full API and records nothing."""

    def _drive(self, t):
        t.count("a")
        t.count("a", 5)
        t.observe("h", 1.0)
        with t.span("outer"):
            with t.span("inner"):
                pass
        t.record_span("p", 0.1)
        return t.delta_since(t.marker()), t.to_dict()

    def test_parity_with_recording_api(self):
        delta, dump = self._drive(NullTelemetry())
        assert delta == {}
        assert dump == {"counters": {}, "histograms": {}, "spans": {}}
        # Same drive on the real registry *does* record — the shim's
        # emptiness is behavioral, not an API gap.
        delta, dump = self._drive(Telemetry())
        assert delta == {} and dump["counters"] == {"a": 6}

    def test_enabled_flags(self):
        assert NullTelemetry.enabled is False
        assert Telemetry.enabled is True


class TestModuleRegistry:
    def test_disabled_by_default(self):
        assert telemetry.is_enabled() is False
        assert isinstance(telemetry.get(), NullTelemetry)

    def test_enable_disable_cycle(self):
        t = telemetry.enable()
        assert telemetry.get() is t and telemetry.is_enabled()
        assert telemetry.enable() is t  # idempotent while enabled
        telemetry.disable()
        assert not telemetry.is_enabled()


class TestDifferential:
    """Telemetry must be invisible to simulation results and the cache."""

    def _config(self):
        return MachineConfig(accelerator=config_for_width(4),
                             engine="macro")

    def test_results_and_cache_bytes_identical(self, tmp_path):
        program = build_liquid_program(build_kernel("FIR"))
        config = self._config()
        key_before = run_key(program, config)

        off = Machine(config).run(program)
        telemetry.enable()
        try:
            on = Machine(config).run(program)
        finally:
            telemetry.disable()

        assert on.cycles == off.cycles
        assert on.instructions == off.instructions
        assert off.telemetry is None
        assert on.telemetry is not None
        assert on.telemetry["counters"]["machine.runs"] == 1

        # The run key is config+program content only — telemetry state
        # cannot perturb it.
        assert run_key(program, config) == key_before

        # Persisted entries are byte-identical: store() strips the
        # telemetry payload before serializing.
        cache_off = RunCache(tmp_path / "off")
        cache_on = RunCache(tmp_path / "on")
        cache_off.store(key_before, off)
        cache_on.store(key_before, on)
        assert (cache_off.path_for(key_before).read_bytes()
                == cache_on.path_for(key_before).read_bytes())

    def test_run_result_wire_format_additive(self):
        program = build_liquid_program(build_kernel("FIR"))
        config = self._config()
        off = Machine(config).run(program)
        assert "telemetry" not in off.to_dict()

        telemetry.enable()
        try:
            on = Machine(config).run(program)
        finally:
            telemetry.disable()
        wire = on.to_dict()
        assert wire["telemetry"] == on.telemetry
        # Round-trips, and old payloads without the key still load.
        from repro.system.metrics import RunResult
        assert RunResult.from_dict(wire).telemetry == on.telemetry
        del wire["telemetry"]
        assert RunResult.from_dict(wire).telemetry is None
