"""Differential conformance suite: fast / turbo / macro / reference.

The pre-decoded fast engine (``engine="fast"``), the superblock-fused
turbo engine (``engine="turbo"``) and the whole-loop macro engine
(``engine="macro"``, turbo plus ``repro.interp.macro`` fragment
kernels) must be observationally
indistinguishable from the reference interpreter — not just "same final
arrays" but the same *complete* execution record:

* bit-identical array snapshots,
* an identical retire-event stream (every field of every
  :class:`~repro.interp.events.RetireEvent`, scalar and microcode,
  in order, with the same source tags),
* identical cycle counts and pipeline statistics,
* an identical serialized :class:`~repro.system.metrics.RunResult`
  (``to_dict()``), including cache, translation and microcode-cache
  stats.

Turbo needs both halves of the comparison: with a tracer attached it
must fall back to the fast engine's per-instruction path (eager
events), and *without* one it runs fused superblocks with batched
timing — the untraced ``to_dict()`` comparison below is what exercises
the fused path.

Every kernel of the paper's benchmark suite is swept at hardware widths
2/4/8 (width 16 rides behind the ``slow`` marker).  The macro engine's
untraced comparison is the one that exercises whole-loop fragment
kernels, batched d-cache streams (``Cache.access_stream``) and folded
loop timing (``PipelineModel.account_loop``).  This is the
equivalence contract described in docs/execution-engines.md; any
optimization to the fast or turbo engines must keep this suite green.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scalarize import build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTHS = (2, 4, 8)


class _Collector:
    """Unbounded retire-event collector (TraceRecorder is a ring)."""

    def __init__(self):
        self.events = []

    def record(self, event, source):
        self.events.append((source, event))


def _run(program, width, engine):
    tracer = _Collector()
    config = MachineConfig(accelerator=config_for_width(width),
                           engine=engine)
    result = Machine(config, tracer=tracer).run(program)
    return result, tracer.events


def _run_untraced(program, width, engine) -> dict:
    config = MachineConfig(accelerator=config_for_width(width),
                           engine=engine)
    return Machine(config).run(program).to_dict()


def _assert_identical(program, width):
    fast, fast_events = _run(program, width, "fast")
    ref, ref_events = _run(program, width, "reference")
    turbo, turbo_events = _run(program, width, "turbo")
    macro, macro_events = _run(program, width, "macro")

    assert fast.arrays == ref.arrays
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert dataclasses.asdict(fast.pipeline) == \
        dataclasses.asdict(ref.pipeline)
    assert dataclasses.asdict(fast.icache) == dataclasses.asdict(ref.icache)
    assert dataclasses.asdict(fast.dcache) == dataclasses.asdict(ref.dcache)

    # Traced turbo/macro must take the per-instruction path: the full
    # serialized result and every event must match the other engines.
    assert turbo.to_dict() == fast.to_dict() == ref.to_dict()
    assert macro.to_dict() == ref.to_dict()
    assert len(macro_events) == len(ref_events)

    assert len(fast_events) == len(ref_events) == len(turbo_events)
    for i, ((f_src, f_ev), (r_src, r_ev), (t_src, t_ev)) in enumerate(
            zip(fast_events, ref_events, turbo_events)):
        assert f_src == r_src == t_src, f"source diverges at event {i}"
        assert f_ev == r_ev, f"retire event diverges at event {i}: " \
                             f"{f_ev} != {r_ev}"
        assert t_ev == r_ev, f"turbo retire event diverges at event {i}: " \
                             f"{t_ev} != {r_ev}"

    # Untraced runs exercise turbo's fused superblock path (batched
    # account_block timing, zero-allocation retirement) and the macro
    # engine's whole-loop fragment kernels: the complete serialized
    # RunResult must still be bit-identical.
    assert _run_untraced(program, width, "turbo") == \
        _run_untraced(program, width, "fast") == ref.to_dict()
    assert _run_untraced(program, width, "macro") == ref.to_dict()


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_engines_bit_identical(bench, width):
    program = build_liquid_program(build_kernel(bench))
    _assert_identical(program, width)


@pytest.mark.slow
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_engines_bit_identical_width16(bench):
    program = build_liquid_program(build_kernel(bench))
    _assert_identical(program, 16)


def test_scalar_machine_engines_identical():
    """No accelerator at all: the purely scalar path must also match."""
    program = build_liquid_program(build_kernel("FIR"))
    fast = Machine(MachineConfig(engine="fast")).run(program)
    ref = Machine(MachineConfig(engine="reference")).run(program)
    turbo = Machine(MachineConfig(engine="turbo")).run(program)
    macro = Machine(MachineConfig(engine="macro")).run(program)
    assert fast.arrays == ref.arrays
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert turbo.to_dict() == fast.to_dict() == ref.to_dict()
    assert macro.to_dict() == ref.to_dict()


@pytest.mark.parametrize("variant", [
    dict(translation_mode="software"),
    dict(observation_point="decode"),
    dict(verify_translations=True),
    dict(pretranslate=True),
    dict(interrupt_interval=500),
])
def test_turbo_identical_across_translator_configs(variant):
    """Translator-heavy configs: fused and eager paths must agree."""
    program = build_liquid_program(build_kernel("FFT"))
    results = [
        Machine(MachineConfig(accelerator=config_for_width(4),
                              engine=engine, **variant)).run(program).to_dict()
        for engine in ("fast", "turbo", "macro")
    ]
    assert results[0] == results[1] == results[2]
