"""Differential conformance suite: fast engine vs. reference engine.

The pre-decoded fast engine (``engine="fast"``) must be observationally
indistinguishable from the reference interpreter — not just "same final
arrays" but the same *complete* execution record:

* bit-identical array snapshots,
* an identical retire-event stream (every field of every
  :class:`~repro.interp.events.RetireEvent`, scalar and microcode,
  in order, with the same source tags),
* identical cycle counts and pipeline statistics.

Every kernel of the paper's benchmark suite is swept at hardware widths
2/4/8 (width 16 rides behind the ``slow`` marker).  This is the
equivalence contract described in docs/execution-engines.md; any
optimization to the fast engine must keep this suite green.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scalarize import build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTHS = (2, 4, 8)


class _Collector:
    """Unbounded retire-event collector (TraceRecorder is a ring)."""

    def __init__(self):
        self.events = []

    def record(self, event, source):
        self.events.append((source, event))


def _run(program, width, engine):
    tracer = _Collector()
    config = MachineConfig(accelerator=config_for_width(width),
                           engine=engine)
    result = Machine(config, tracer=tracer).run(program)
    return result, tracer.events


def _assert_identical(program, width):
    fast, fast_events = _run(program, width, "fast")
    ref, ref_events = _run(program, width, "reference")

    assert fast.arrays == ref.arrays
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
    assert dataclasses.asdict(fast.pipeline) == \
        dataclasses.asdict(ref.pipeline)
    assert dataclasses.asdict(fast.icache) == dataclasses.asdict(ref.icache)
    assert dataclasses.asdict(fast.dcache) == dataclasses.asdict(ref.dcache)

    assert len(fast_events) == len(ref_events)
    for i, ((f_src, f_ev), (r_src, r_ev)) in enumerate(
            zip(fast_events, ref_events)):
        assert f_src == r_src, f"source diverges at event {i}"
        assert f_ev == r_ev, f"retire event diverges at event {i}: " \
                             f"{f_ev} != {r_ev}"


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_engines_bit_identical(bench, width):
    program = build_liquid_program(build_kernel(bench))
    _assert_identical(program, width)


@pytest.mark.slow
@pytest.mark.parametrize("bench", BENCHMARK_ORDER)
def test_engines_bit_identical_width16(bench):
    program = build_liquid_program(build_kernel(bench))
    _assert_identical(program, 16)


def test_scalar_machine_engines_identical():
    """No accelerator at all: the purely scalar path must also match."""
    program = build_liquid_program(build_kernel("FIR"))
    fast = Machine(MachineConfig(engine="fast")).run(program)
    ref = Machine(MachineConfig(engine="reference")).run(program)
    assert fast.arrays == ref.arrays
    assert fast.cycles == ref.cycles
    assert fast.instructions == ref.instructions
