"""Codegen layer: lift determinism, IR kind coverage, new loop shapes.

Four angles on ``repro/codegen/``:

* **Determinism** — lifting the same fragment bytes and lowering them
  through the numpy backend must produce byte-identical generated
  source, every time (a property test over real translated fragments;
  the fragment store and the cross-run memo in
  ``repro/interp/turbo.py`` both rely on content-keyed reuse being
  safe).

* **Coverage** — every :class:`~repro.codegen.ir.IRKind` member must
  be exercised by at least one lifted paper kernel, mirroring the
  ``RetranslateReason`` battery: an IR node kind nothing lifts into is
  dead weight or an untested code path.

* **New shapes** — the nested counted-loop and fissioned permutation
  chain shapes (ISSUE 8's recognition extensions beyond the canonical
  loop, §3 of the paper) are checked on synthetic fragments built to
  match them exactly, including the facts of the lifted IR.

* **Bit-identity** — macro-plan execution of the new shapes (whole
  loop-nest and whole-chain kernels with batched timing) must leave
  machine state — memory bytes, both scalar register banks, flags,
  vector registers, retired count — *and* the pipeline/cache models
  exactly where the per-block turbo path leaves them.  This is the
  same contract tests/test_engine_differential.py enforces end-to-end
  for the translator's own fragments, applied to shapes the dynamic
  translator does not yet emit.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.backend import get_backend
from repro.codegen.ir import IRKind
from repro.codegen.lift import lift_fragment
from repro.core.scalarize import build_liquid_program
from repro.interp.macro import (
    FragmentChainShape,
    FragmentLoopShape,
    FragmentNestShape,
)
from repro.interp.state import MachineState, SymbolInfo, SymbolTable
from repro.interp.turbo import fragment_tables_for
from repro.isa.assembler import assemble
from repro.isa.encoding import decode_program
from repro.kernels.suite import build_kernel
from repro.memory.memory import Memory
from repro.observability import telemetry
from repro.pipeline.core import PipelineModel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTH = 8
OFFSET = 1 << 20  # arbitrary fragment PC offset, as the machine assigns

#: Paper kernels whose translations jointly cover every IR node kind:
#: FIR contributes REDUCE and a scalar-store chain, FFT the butterfly
#: PERM and a fissioned two-loop chain, LU plain LOAD/STORE/ALU loops.
CORPUS_KERNELS = ("FIR", "FFT", "LU")


def _translated_entries(kernel_name, width=WIDTH):
    """Run *kernel_name* once and return its completed translations."""
    program = build_liquid_program(build_kernel(kernel_name))
    config = MachineConfig(accelerator=config_for_width(width),
                           engine="turbo")
    result = Machine(config).run(program)
    entries = [t.entry for t in result.translations
               if t.ok and t.entry is not None]
    assert entries, f"{kernel_name}: no completed translations"
    return entries


@pytest.fixture(scope="module")
def corpus():
    """(kernel name, entry) for every completed corpus translation."""
    return [(name, entry) for name in CORPUS_KERNELS
            for entry in _translated_entries(name)]


# -- determinism ---------------------------------------------------------------


def _emit_sources(fragment, width, label):
    """(IR kinds, concatenated generated source) for *fragment*.

    Lowers every lifted loop (the inner loop of a nested region, as
    the plan builder does) and the whole-fragment chain when present —
    every numpy-backend artifact the macro engine would compile.
    """
    backend = get_backend("numpy")
    ir = lift_fragment(fragment, width)
    sources = []
    for head in sorted(ir.loops):
        node = ir.loops[head]
        lowered = backend.lower_loop(node.inner or node, label)
        if lowered is not None:
            sources.append(lowered.source)
    if ir.chain is not None:
        lowered = backend.lower_chain(ir.chain, label)
        if lowered is not None:
            sources.append(lowered.source)
    return ir.node_kinds(), "\n\n".join(sources)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_lift_and_emit_are_deterministic(corpus, data):
    """Same fragment bytes -> byte-identical generated source.

    Each pass decodes the entry's canonical bytes afresh, so nothing
    (memoization, dict order, object identity) can leak between lifts.
    """
    name, entry = data.draw(st.sampled_from(corpus))
    passes = [
        _emit_sources(decode_program(entry.encoded_bytes()),
                      entry.width, entry.function)
        for _ in range(2)
    ]
    assert passes[0] == passes[1], \
        f"{name}/{entry.function}: lift/emit not deterministic"
    kinds, source = passes[0]
    assert source, f"{name}/{entry.function}: nothing lowered"
    # The decoded twin must also match the original in-memory fragment.
    assert _emit_sources(entry.fragment, entry.width,
                         entry.function) == passes[0]


# -- IR kind coverage ----------------------------------------------------------


def test_every_ir_kind_is_lifted_from_a_paper_kernel(corpus):
    """Each IRKind member appears in some corpus kernel's lifted IR."""
    witness = {}
    for name, entry in corpus:
        for kind in entry.lift_ir().node_kinds():
            witness.setdefault(kind, name)
    missing = set(IRKind) - set(witness)
    assert not missing, \
        f"IR kinds never lifted from any paper kernel: {missing}"


def test_kind_witnesses_are_the_expected_kernels(corpus):
    """Pin the interesting kinds to the kernels that motivate them."""
    kinds = {}
    for name, entry in corpus:
        kinds.setdefault(name, set()).update(entry.lift_ir().node_kinds())
    assert IRKind.PERM in kinds["FFT"]      # butterfly permutation
    assert IRKind.REDUCE in kinds["FIR"]    # dot-product accumulator
    assert IRKind.CHAIN in kinds["FIR"]     # whole-fragment chain
    assert IRKind.SCALAR in kinds["FIR"]    # mov prologue / stw epilogue


# -- synthetic fragments for the new shapes ------------------------------------


def nest_source(width):
    """A nested counted loop: 5 outer trips re-running one canonical
    inner vector loop (accumulating into B so outer trips are
    observable in memory)."""
    trip = 4 * width
    return f"""
        .data A f32 {trip} = 0.0
        .data B f32 {trip} = 0.0
        mov r4, #0
    outer:
        mov r1, #0
    inner:
        vld.f32 vf1, [A + r1]
        vld.f32 vf2, [B + r1]
        vadd.f32 vf3, vf1, vf2
        vst.f32 vf3, [B + r1]
        add r1, r1, #{width}
        cmp r1, #{trip}
        blt inner
        add r4, r4, #1
        cmp r4, #5
        blt outer
    """


def chain_source(width):
    """A fissioned two-loop chain (the §3 loop-fission shape after
    translation): square A into B, double B into C, then store the
    first loop's induction final — which the chain kernel must
    materialize between regions."""
    trip = 4 * width
    return f"""
        .data A f32 {trip} = 0.0
        .data B f32 {trip} = 0.0
        .data C f32 {trip} = 0.0
        .data N i32 1 = 0
        mov r1, #0
    sq:
        vld.f32 vf1, [A + r1]
        vmul.f32 vf2, vf1, vf1
        vst.f32 vf2, [B + r1]
        add r1, r1, #{width}
        cmp r1, #{trip}
        blt sq
        mov r2, #0
    dbl:
        vld.f32 vf3, [B + r2]
        vadd.f32 vf4, vf3, vf3
        vst.f32 vf4, [C + r2]
        add r2, r2, #{width}
        cmp r2, #{trip}
        blt dbl
        stw r1, [N]
    """


def _fill_arrays(memory, symbols, names, trip):
    """Deterministic, binary32-exact array contents (0.5 grid)."""
    for k, name in enumerate(names):
        values = [((i * 37 + k * 11) % 19) * 0.5 - 3.0
                  for i in range(trip)]
        memory.store_vector(symbols.address_of(name), "f32", values)


def _drive(source, width, macro):
    """Execute an assembled fragment the way Machine._run_fragment
    does — plan kernels first (macro), fused blocks otherwise — and
    return (state, pipeline, plan shape class names that ran)."""
    program = assemble(source)
    pipeline = PipelineModel()
    fragment, _table, blocks, plan = fragment_tables_for(
        program, pipeline, width, OFFSET, macro=macro)
    memory = Memory(1 << 16)
    symbols = SymbolTable()
    addr = 0x400
    for arr in fragment.data.values():
        symbols.add(SymbolInfo(arr.name, addr, arr.elem, len(arr),
                               arr.read_only))
        if arr.values:
            memory.store_vector(addr, arr.elem, arr.values)
        addr += max(arr.size_bytes, 64)
    _fill_arrays(memory, symbols,
                 [a.name for a in fragment.data.values()
                  if a.elem == "f32"],
                 4 * width)
    state = MachineState(fragment, memory, symbols, vector_width=width)
    count = len(fragment.instructions)
    ran = []
    steps = 0
    while state.pc < count:
        steps += 1
        assert steps < 10_000, "runaway fragment"
        if plan is not None:
            kernel = plan.get(state.pc)
            if kernel is not None:
                trips = kernel.trips(state)
                if trips is not None \
                        and kernel.run(state, pipeline, trips):
                    ran.append(type(kernel).__name__)
                    continue
        block = blocks.block_at(state.pc)
        taken = block.run(state)
        pipeline.account_block(block.timing, block.mem, taken)
    return state, pipeline, ran


def _snapshot(state, pipeline):
    """Everything both engines must agree on, as one comparable dict."""
    return {
        "memory": bytes(state.memory._bytes),
        "ints": dict(state.regs.ints),
        "floats": dict(state.regs.floats),
        "flags": dict(state.regs.flags),
        "vregs": state.vregs.snapshot(),
        "pc": state.pc,
        "retired": state.instructions_retired,
        "cycles": pipeline.total_cycles(),
        "pipeline": dataclasses.asdict(pipeline.stats),
        "icache": dataclasses.asdict(pipeline.icache.stats),
        "dcache": dataclasses.asdict(pipeline.dcache.stats),
    }


# -- nested counted loop -------------------------------------------------------


def test_nested_loop_is_lifted():
    program = assemble(nest_source(WIDTH))
    ir = lift_fragment(program, WIDTH)
    assert sorted(ir.loops) == [1, 2]
    outer = ir.loops[1]
    assert outer.inner is ir.loops[2]
    assert outer.induction == "r4"
    assert outer.trip == 5 and outer.step == 1
    inner = outer.inner
    assert inner.inner is None
    assert inner.induction == "r1"
    assert inner.trip == 4 * WIDTH and inner.step == WIDTH
    # The outer body (induction reset + inner loop) nests in the IR.
    assert IRKind.LOOP in ir.node_kinds()
    assert IRKind.SCALAR in ir.node_kinds()
    assert ir.chain is None  # add r4 has no scalar chain lowering


def test_nested_loop_plan_shapes():
    program = assemble(nest_source(WIDTH))
    _, _, _, plan = fragment_tables_for(
        program, PipelineModel(), WIDTH, OFFSET, macro=True)
    assert isinstance(plan[1], FragmentNestShape)
    assert isinstance(plan[2], FragmentLoopShape)


def test_nested_loop_macro_is_bit_identical():
    src = nest_source(WIDTH)
    macro_state, macro_pipe, ran = _drive(src, WIDTH, macro=True)
    turbo_state, turbo_pipe, turbo_ran = _drive(src, WIDTH, macro=False)
    assert "FragmentNestShape" in ran, \
        f"nest kernel never ran (plan shapes that did: {ran})"
    assert turbo_ran == []
    assert _snapshot(macro_state, macro_pipe) == \
        _snapshot(turbo_state, turbo_pipe)


# -- fissioned permutation chain ----------------------------------------------


def test_fission_chain_is_lifted():
    program = assemble(chain_source(WIDTH))
    ir = lift_fragment(program, WIDTH)
    chain = ir.chain
    assert chain is not None
    assert len(chain.loops) == 2, "loop fission: two counted loops"
    trip_loops = 4  # trips per loop at this width
    assert [n for (_ri, n, _sb) in chain.trips] == [trip_loops] * 2
    # mov + loop + mov + loop + stw = 5 regions, retired counts exact
    assert len(chain.regions) == 5
    assert chain.total_retired == 2 + 2 * trip_loops * 6 + 1


def test_fission_chain_plan_shape():
    program = assemble(chain_source(WIDTH))
    _, _, _, plan = fragment_tables_for(
        program, PipelineModel(), WIDTH, OFFSET, macro=True)
    chain = plan[0]
    assert isinstance(chain, FragmentChainShape)
    assert chain.trips(None) == 1


def test_fission_chain_macro_is_bit_identical():
    src = chain_source(WIDTH)
    macro_state, macro_pipe, ran = _drive(src, WIDTH, macro=True)
    turbo_state, turbo_pipe, _ = _drive(src, WIDTH, macro=False)
    assert ran == ["FragmentChainShape"], \
        "one whole-chain invocation must cover the entire fragment"
    assert _snapshot(macro_state, macro_pipe) == \
        _snapshot(turbo_state, turbo_pipe)
    # The chain materialized the first induction final for the stw.
    n_addr = macro_state.symbols.address_of("N")
    assert macro_state.memory.load(n_addr, "i32") == 4 * WIDTH


# -- telemetry: shape counters -------------------------------------------------


def test_new_shape_telemetry_counters():
    telemetry.enable()
    try:
        lift_fragment(assemble(nest_source(WIDTH)), WIDTH)
        lift_fragment(assemble(chain_source(WIDTH)), WIDTH)
        counters = telemetry.get().to_dict()["counters"]
    finally:
        telemetry.disable()
    assert counters.get("macro.plan.shape.nested-loop", 0) >= 1
    assert counters.get("macro.plan.shape.fission-chain", 0) >= 1
    assert counters.get("macro.plan.shape.chain", 0) >= 1


# -- width-16 sweep (nightly) --------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("make_source", [nest_source, chain_source],
                         ids=["nested-loop", "fission-chain"])
def test_new_shapes_bit_identical_width16(make_source):
    src = make_source(16)
    macro_state, macro_pipe, ran = _drive(src, 16, macro=True)
    turbo_state, turbo_pipe, _ = _drive(src, 16, macro=False)
    assert ran, "no plan kernel ran at width 16"
    assert _snapshot(macro_state, macro_pipe) == \
        _snapshot(turbo_state, turbo_pipe)


@pytest.mark.slow
def test_fft_width16_lifts_a_fission_chain():
    """The real paper kernel behind the fission shape: FFT's stage
    fragment must lift to a multi-loop chain at width 16 too."""
    chains = [e.lift_ir().chain for e in _translated_entries("FFT", 16)]
    assert any(c is not None and len(c.loops) >= 2 for c in chains)
