"""Load-test harness tests (``repro loadtest``).

The harness's claims: the payload it writes is a well-formed BENCH
document (``{machine, records, speedups}``) that `repro bench compare`
can gate, the storm/warm ratios come from the *server's* ``/stats``
deltas rather than client guesses, and the pass/fail bar catches
duplicate machine-runs, warm-phase simulations, and errors.
"""

import copy

import pytest

from repro.evaluation.loadtest import (
    LoadtestError,
    LoadtestPlan,
    STORM_REQUEST,
    fetch_stats,
    latency_histogram,
    loadtest_ok,
    percentile,
    render_summary,
    run_loadtest,
)
from repro.evaluation.runcache import RunCache
from repro.evaluation.simserver import SERVICE_NAME, SimServer


class TestReductions:
    def test_percentile_nearest_rank(self):
        latencies = [0.01 * n for n in range(1, 101)]
        assert percentile(latencies, 0.50) == pytest.approx(0.50)
        assert percentile(latencies, 0.99) == pytest.approx(0.99)
        assert percentile(latencies, 1.00) == pytest.approx(1.00)
        assert percentile([], 0.5) == 0.0
        assert percentile([0.25], 0.99) == 0.25

    def test_histogram_buckets_are_log2_ms(self):
        histogram = latency_histogram([0.0005, 0.0015, 0.003, 0.010])
        assert histogram == {"<1ms": 1, "<2ms": 1, "<4ms": 1, "<16ms": 1}

    def test_histogram_sorted_by_bound(self):
        histogram = latency_histogram([0.5, 0.0005, 0.01])
        bounds = [int(label[1:-2]) for label in histogram]
        assert bounds == sorted(bounds)


class TestPlan:
    def test_warm_set_spans_benchmarks_widths_and_a_baseline(self):
        plan = LoadtestPlan(benchmarks=("FIR",), widths=(4, 8))
        assert plan.warm_set == [
            {"benchmark": "FIR", "width": 4},
            {"benchmark": "FIR", "width": 8},
            {"benchmark": "FIR", "program_kind": "baseline"},
        ]

    def test_storm_key_not_in_warm_set(self):
        plan = LoadtestPlan()
        assert STORM_REQUEST not in plan.warm_set

    def test_mixed_payloads_are_seeded_and_warm_only(self):
        plan = LoadtestPlan(requests=50, benchmarks=("FIR",), widths=(4,))
        payloads = plan.mixed_payloads()
        assert len(payloads) == 50
        assert all(p in plan.warm_set for p in payloads)
        assert payloads == LoadtestPlan(
            requests=50, benchmarks=("FIR",), widths=(4,)).mixed_payloads()

    @pytest.mark.parametrize("kwargs", [
        {"requests": 0}, {"storm": 1}, {"concurrency": 0},
    ])
    def test_rejects_degenerate_plans(self, kwargs):
        with pytest.raises(ValueError):
            LoadtestPlan(**kwargs)


class TestFetchStats:
    def test_rejects_dead_url(self):
        with pytest.raises(LoadtestError, match="no sim server"):
            fetch_stats("http://127.0.0.1:9", timeout=2.0)

    def test_rejects_non_sim_server(self, tmp_path):
        """A --url pointed at the *cache* daemon (which also speaks
        /stats) must read as 'not a sim server', not as a zero-run
        success."""
        from repro.evaluation.cacheserver import CacheServer
        server = CacheServer(root=tmp_path / "cache", port=0)
        server.start()
        try:
            with pytest.raises(LoadtestError, match="not a"):
                fetch_stats(server.url)
        finally:
            server.shutdown()


@pytest.fixture(scope="module")
def loadtest_payload(tmp_path_factory):
    """One small end-to-end loadtest against an in-process server,
    shared by every assertion below (each run costs real simulations)."""
    cache = RunCache(tmp_path_factory.mktemp("loadtest-cache"))
    server = SimServer(jobs=2, cache=cache).start()
    try:
        plan = LoadtestPlan(requests=60, concurrency=8, storm=12,
                            benchmarks=("FIR",), widths=(4,))
        payload = run_loadtest(server.url, plan)
    finally:
        server.shutdown()
    return payload


class TestEndToEnd:
    def test_payload_is_bench_schema(self, loadtest_payload):
        assert set(loadtest_payload) == {"machine", "records",
                                         "speedups", "plan"}
        assert loadtest_payload["machine"]["cpu_count"] >= 1
        records = loadtest_payload["records"]
        assert set(records) == {"serve_dedup", "serve_warm",
                                "serve_latency", "serve_errors"}
        # Gated records expose "speedup"; latency rides along ungated.
        assert set(loadtest_payload["speedups"]) == {"serve_dedup",
                                                     "serve_warm"}
        assert "speedup" not in records["serve_latency"]

    def test_storm_cost_exactly_one_machine_run(self, loadtest_payload):
        dedup = loadtest_payload["records"]["serve_dedup"]
        assert dedup["machine_runs"] == 1
        assert dedup["duplicate_machine_runs"] == 0
        assert dedup["dedup_ratio"] == pytest.approx(1 - 1 / 12,
                                                     abs=1e-4)
        assert dedup["speedup"] == pytest.approx((12 + 1) / 2)
        sources = dedup["sources"]
        assert sources.get("cold", 0) == 1
        assert sources.get("error", 0) == 0

    def test_warm_phase_simulates_nothing(self, loadtest_payload):
        warm = loadtest_payload["records"]["serve_warm"]
        assert warm["requests"] == 60
        assert warm["machine_runs"] == 0
        assert warm["speedup"] == pytest.approx(61.0)
        assert warm["sources"] == {"hit": 60}

    def test_latency_record_is_populated(self, loadtest_payload):
        latency = loadtest_payload["records"]["serve_latency"]
        assert latency["requests"] == 60
        assert 0 < latency["p50_ms"] <= latency["p99_ms"] \
            <= latency["max_ms"]
        assert latency["throughput_rps"] > 0
        assert sum(latency["histogram"].values()) == 60

    def test_verdict_passes_and_renders(self, loadtest_payload):
        assert loadtest_payload["records"]["serve_errors"]["errors"] == 0
        assert loadtest_ok(loadtest_payload)
        summary = render_summary(loadtest_payload)
        assert "verdict: OK" in summary
        assert "dedup ratio" in summary

    def test_verdict_fails_on_duplicate_machine_runs(self,
                                                     loadtest_payload):
        broken = copy.deepcopy(loadtest_payload)
        broken["records"]["serve_dedup"]["duplicate_machine_runs"] = 3
        assert not loadtest_ok(broken)
        assert "FAILED" in render_summary(broken)

    def test_verdict_fails_on_warm_simulations(self, loadtest_payload):
        broken = copy.deepcopy(loadtest_payload)
        broken["records"]["serve_warm"]["machine_runs"] = 2
        assert not loadtest_ok(broken)

    def test_verdict_fails_on_errors(self, loadtest_payload):
        broken = copy.deepcopy(loadtest_payload)
        broken["records"]["serve_errors"]["errors"] = 1
        assert not loadtest_ok(broken)

    def test_service_name_matches_server(self, loadtest_payload):
        # The plan embeds the URL it drove; sanity-check the constant
        # every client checks against.
        assert SERVICE_NAME == "repro-sim-server"
        assert loadtest_payload["plan"]["warm_set"] == 2
