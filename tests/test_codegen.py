"""Tests for the three program builders (baseline / liquid / native)."""

import pytest

from repro.core.scalarize import (
    build_baseline_program,
    build_liquid_program,
    build_native_program,
)
from repro.core.scalarize.loop_ir import Kernel
from repro.isa.instructions import Imm, VImm
from repro.isa.program import DataArray
from repro.kernels.dsl import LoopBuilder
from repro.kernels.scalarwork import recurrence_block

from conftest import perm_kernel, run_program, simple_kernel
from repro.system.metrics import arrays_equal


class TestBaselineBuilder:
    def test_hot_loops_inlined(self):
        program = build_baseline_program(simple_kernel())
        opcodes = [i.opcode for i in program.instructions]
        assert "blo" not in opcodes and "bl" not in opcodes
        assert "ret" not in opcodes
        assert opcodes[-1] == "halt"

    def test_outer_loop_wraps_schedule(self):
        program = build_baseline_program(simple_kernel(calls=5))
        assert "outer_loop" in program.labels
        assert "sched_ctr" in program.data
        # The outer-loop epilogue compares against the repeat count.
        cmps = [i for i in program.instructions
                if i.opcode == "cmp" and i.srcs[1] == Imm(5)]
        assert cmps

    def test_no_outer_loop_for_single_repeat(self):
        program = build_baseline_program(simple_kernel(calls=1))
        assert "outer_loop" not in program.labels
        assert "sched_ctr" not in program.data

    def test_scalar_blocks_spliced_with_mangled_labels(self):
        kernel = simple_kernel()
        kernel.stages.append(recurrence_block("work", 10))
        kernel.schedule = ["hot", "work", "work"]
        program = build_baseline_program(kernel)
        labels = [name for name in program.labels if "work" in name]
        assert len(labels) == 2  # one per splice instance
        run_program(program)  # and it executes fine


class TestLiquidBuilder:
    def test_hot_loops_outlined_once(self):
        program = build_liquid_program(simple_kernel(calls=5))
        assert program.outlined_functions == ["hot_fn"]
        blos = [i for i in program.instructions if i.opcode == "blo"]
        assert len(blos) == 1  # called via the outer loop, emitted once
        body = program.function_body("hot_fn")
        assert body[-1].opcode == "ret"

    def test_shares_synthesized_arrays_with_baseline(self):
        kernel = perm_kernel()
        base = build_baseline_program(kernel)
        liquid = build_liquid_program(kernel)
        base_synth = {n for n in base.data if "bfly" in n or "tmp" in n}
        liquid_synth = {n for n in liquid.data if "bfly" in n or "tmp" in n}
        assert base_synth == liquid_synth
        for name in base_synth:
            assert base.data[name].values == liquid.data[name].values


class TestNativeBuilder:
    def test_emits_vector_instructions(self):
        program = build_native_program(simple_kernel(), width=8)
        opcodes = {i.opcode for i in program.instructions}
        assert "vld" in opcodes and "vst" in opcodes
        assert program.native_fallbacks == []

    def test_increment_is_hardware_width(self):
        program = build_native_program(simple_kernel(trip=64), width=8)
        adds = [i for i in program.instructions
                if i.opcode == "add" and i.srcs[1] == Imm(8)]
        assert adds

    def test_wide_perm_falls_back_to_scalar(self):
        kernel = perm_kernel(period=8)
        program = build_native_program(kernel, width=4)
        assert program.native_fallbacks == ["hot"]
        assert not any(i.opcode.startswith("v") for i in program.instructions)

    def test_indivisible_trip_falls_back(self):
        kernel = simple_kernel(trip=8)
        program = build_native_program(kernel, width=16)
        assert program.native_fallbacks == ["hot"]

    def test_vimm_tiled_to_width(self):
        builder = LoopBuilder("hot", trip=32, elem="f32")
        x = builder.load("x")
        builder.store("out", builder.mask(x, builder.lanes([0, -1])))
        kernel = Kernel("k", arrays=[
            DataArray("x", "f32", [1.0] * 32),
            DataArray("out", "f32", [0.0] * 32),
        ], stages=[builder.build()], schedule=["hot"])
        program = build_native_program(kernel, width=8)
        vimm = [s for i in program.instructions for s in i.srcs
                if isinstance(s, VImm)]
        assert vimm and len(vimm[0].lanes) == 8

    def test_wide_vimm_loaded_from_synthesized_array(self):
        builder = LoopBuilder("hot", trip=32, elem="f32")
        x = builder.load("x")
        builder.store("out",
                      builder.mask(x, builder.lanes([0, -1, 0, -1,
                                                     -1, 0, -1, 0])))
        kernel = Kernel("k", arrays=[
            DataArray("x", "f32", [1.0] * 32),
            DataArray("out", "f32", [0.0] * 32),
        ], stages=[builder.build()], schedule=["hot"])
        # Period 8 > width 4: the constant must be loaded, not immediate.
        program = build_native_program(kernel, width=4)
        assert any("ncnst" in name for name in program.data)
        baseline = build_baseline_program(kernel)
        r_native = run_program(program, width=4)
        r_base = run_program(baseline)
        assert arrays_equal(r_base, r_native)


class TestOuterLoopSemantics:
    @pytest.mark.parametrize("builder_fn,width", [
        (build_baseline_program, None),
        (build_liquid_program, 8),
    ])
    def test_schedule_repeats_observed(self, builder_fn, width):
        kernel = simple_kernel(calls=7)
        program = builder_fn(kernel)
        result = run_program(program, width=width)
        assert result.arrays["sched_ctr"] == [7]

    def test_repeats_multiply_hot_loop_calls(self):
        kernel = simple_kernel(calls=7)
        result = run_program(build_liquid_program(kernel), width=8)
        assert result.functions["hot_fn"].calls == 7


class TestScalarBlockEdgeCases:
    def test_block_appearing_twice_in_pattern(self):
        kernel = simple_kernel(calls=3)
        block = recurrence_block("pad", 5)
        kernel.stages.append(block)
        kernel.schedule = ["pad", "hot", "pad"]
        base = run_program(build_baseline_program(kernel))
        liquid = run_program(build_liquid_program(kernel), width=8)
        assert arrays_equal(base, liquid)

    def test_empty_schedule_is_valid(self):
        kernel = Kernel("k", arrays=[], stages=[], schedule=[])
        program = build_baseline_program(kernel)
        result = run_program(program)
        assert result.instructions >= 1  # just the halt
