"""Scheduler and persistent run-cache tests (docs/evaluation-runner.md).

Covers the ISSUE 2 acceptance properties at test scale:

* ``--jobs 1`` and ``--jobs 4`` produce byte-identical experiment rows
  and rendered tables,
* cache keys miss on any config change and on a format-version bump,
* corrupted cache entries fall back to re-simulation without crashing,
* a warm cache answers everything with zero ``Machine.run`` calls,
* the prefetch phase leaves per-experiment code with nothing to
  simulate.
"""

import dataclasses
import json

import pytest

from repro.evaluation import report
from repro.evaluation.experiments import (
    EvalContext,
    figure6_requests,
    figure6_speedups,
    native_overhead,
    native_overhead_requests,
    table6_call_distances,
    table6_requests,
)
from repro.evaluation.runcache import (
    CACHE_FORMAT_VERSION,
    RunCache,
    config_fingerprint,
    run_key,
)
from repro.evaluation.runner import (
    RunRequest,
    RunScheduler,
    build_request_program,
    execute_request,
)
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

SUBSET = ["LU", "FFT"]
WIDTHS = (2, 8)


def liquid_request(benchmark="LU", width=8, **kwargs):
    return RunRequest(benchmark, "liquid",
                      MachineConfig(accelerator=config_for_width(width),
                                    **kwargs))


class TestRunRequest:
    def test_rejects_unknown_program_kind(self):
        with pytest.raises(ValueError, match="program_kind"):
            RunRequest("LU", "mystery", MachineConfig())

    def test_rejects_bad_repeat_factor(self):
        with pytest.raises(ValueError, match="repeat_factor"):
            RunRequest("LU", "liquid", MachineConfig(), repeat_factor=0)

    def test_requests_are_hashable_and_deduplicate(self):
        a = liquid_request()
        b = liquid_request()
        assert a == b
        assert len({a, b}) == 1


class TestRunKey:
    def test_key_is_deterministic(self):
        request = liquid_request()
        program = build_request_program(request)
        assert run_key(program, request.config) == \
            run_key(program, request.config)

    def test_config_change_misses(self):
        program = build_request_program(liquid_request())
        base = MachineConfig(accelerator=config_for_width(8))
        keys = {run_key(program, base)}
        for changed in (
            MachineConfig(accelerator=config_for_width(4)),
            MachineConfig(accelerator=config_for_width(8),
                          ucode_cache_entries=2),
            MachineConfig(accelerator=config_for_width(8),
                          translation_cycles_per_instruction=10),
            MachineConfig(accelerator=config_for_width(8),
                          pretranslate=True),
            MachineConfig(),
        ):
            keys.add(run_key(program, changed))
        assert len(keys) == 6, "every config variation must change the key"

    def test_key_is_engine_invariant(self):
        # Engines are bit-identical by contract, so one cached result
        # serves all of them: the engine must NOT perturb the key.
        from repro.interp.executor import ENGINES
        program = build_request_program(liquid_request())
        keys = {
            run_key(program, MachineConfig(accelerator=config_for_width(8),
                                           engine=engine))
            for engine in ENGINES
        }
        assert len(keys) == 1, "cache entries must be shared across engines"

    def test_program_change_misses(self):
        config = MachineConfig(accelerator=config_for_width(8))
        lu = build_request_program(liquid_request("LU"))
        fft = build_request_program(liquid_request("FFT"))
        scaled = build_request_program(
            RunRequest("LU", "liquid", config, repeat_factor=2))
        assert len({run_key(lu, config), run_key(fft, config),
                    run_key(scaled, config)}) == 3

    def test_format_version_bump_misses(self):
        request = liquid_request()
        program = build_request_program(request)
        assert run_key(program, request.config) != \
            run_key(program, request.config,
                    format_version=CACHE_FORMAT_VERSION + 1)

    def test_fingerprint_excludes_display_name(self):
        accel = config_for_width(8)
        renamed = dataclasses.replace(accel, name="marketing-name")
        assert config_fingerprint(MachineConfig(accelerator=accel)) == \
            config_fingerprint(MachineConfig(accelerator=renamed))

    def test_fingerprint_is_json_canonical(self):
        fp = config_fingerprint(MachineConfig(
            accelerator=config_for_width(8)))
        assert json.loads(json.dumps(fp)) == fp


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        assert cache.load(key) is None
        result = execute_request(request)
        cache.store(key, result)
        hit = cache.load(key)
        assert hit is not None
        assert hit.cycles == result.cycles
        assert hit.arrays == result.arrays
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = RunCache(tmp_path)
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        cache.store(key, execute_request(request))
        path = cache.path_for(key)
        path.write_text("{ not json")
        assert cache.load(key) is None, "corrupt entry must read as a miss"
        assert not path.exists(), "corrupt entry must be deleted"
        assert cache.stats.errors == 1
        # The scheduler transparently re-simulates and re-populates.
        scheduler = RunScheduler(jobs=1, cache=cache)
        result = scheduler.run(request)
        assert result.cycles > 0
        assert path.exists()

    def test_stale_format_version_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        cache.store(key, execute_request(request))
        path = cache.path_for(key)
        payload = json.loads(path.read_text())
        payload["format_version"] = CACHE_FORMAT_VERSION - 1
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None
        assert not path.exists()

    def test_truncated_entry_recovers(self, tmp_path):
        cache = RunCache(tmp_path)
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        cache.store(key, execute_request(request))
        path = cache.path_for(key)
        path.write_text(path.read_text()[:100])  # killed mid-write
        assert cache.load(key) is None

    def test_clear_and_info(self, tmp_path):
        cache = RunCache(tmp_path)
        request = liquid_request()
        key = run_key(build_request_program(request), request.config)
        cache.store(key, execute_request(request))
        assert cache.entry_count() == 1
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0


class TestRunScheduler:
    def test_deduplicates_identical_requests(self):
        scheduler = RunScheduler(jobs=1)
        a, b = liquid_request(), liquid_request()
        results = scheduler.run_many([a, b, a])
        assert len(results) == 1
        assert scheduler.stats.executed == 1
        assert scheduler.stats.deduplicated == 2

    def test_memo_answers_repeat_calls(self):
        scheduler = RunScheduler(jobs=1)
        request = liquid_request()
        first = scheduler.run(request)
        second = scheduler.run(request)
        assert first is second
        assert scheduler.stats.executed == 1
        assert scheduler.stats.memo_hits == 1

    def test_warm_cache_needs_zero_machine_runs(self, tmp_path, monkeypatch):
        requests = [liquid_request(b, w) for b in SUBSET for w in WIDTHS]
        cold = RunScheduler(jobs=1, cache=RunCache(tmp_path))
        cold_results = cold.run_many(requests)
        assert cold.stats.executed == len(requests)

        calls = []
        real_run = Machine.run
        monkeypatch.setattr(
            Machine, "run",
            lambda self, program: calls.append(program.name)
            or real_run(self, program))
        warm = RunScheduler(jobs=1, cache=RunCache(tmp_path))
        warm_results = warm.run_many(requests)
        assert calls == [], f"warm cache still simulated {calls}"
        assert warm.stats.cache_hits == len(requests)
        assert warm.stats.executed == 0
        for request in requests:
            assert warm_results[request].cycles == \
                cold_results[request].cycles
            assert warm_results[request].arrays == \
                cold_results[request].arrays

    def test_parallel_matches_sequential(self):
        requests = [liquid_request(b, w) for b in SUBSET for w in WIDTHS]
        seq = RunScheduler(jobs=1).run_many(requests)
        par_scheduler = RunScheduler(jobs=4)
        par = par_scheduler.run_many(requests)
        assert par_scheduler.stats.parallel_executed == len(requests)
        for request in requests:
            assert par[request].cycles == seq[request].cycles
            assert par[request].pipeline == seq[request].pipeline
            assert par[request].arrays == seq[request].arrays


class TestBatchedProbe:
    def test_one_round_trip_per_batch(self, tmp_path):
        requests = [liquid_request(b, w) for b in SUBSET for w in WIDTHS]
        cache = RunCache(tmp_path)
        RunScheduler(jobs=1, cache=cache).run_many(requests)
        assert cache.stats.probe_calls == 1, \
            "a batch must cost one contains_many round-trip"
        assert cache.stats.probed == len(requests)

    def test_probe_telemetry_counts_batched_keys(self, tmp_path):
        from repro.observability import telemetry
        requests = [liquid_request(b, w) for b in SUBSET for w in WIDTHS]
        tel = telemetry.enable()
        try:
            RunScheduler(jobs=1,
                         cache=RunCache(tmp_path)).run_many(requests)
            counters = dict(tel.to_dict()["counters"])
        finally:
            telemetry.disable()
        assert counters.get("runcache.probe.calls") == 1
        assert counters.get("runcache.probe.batched") == len(requests)

    def test_warm_batch_loads_only_present_keys(self, tmp_path,
                                                monkeypatch):
        requests = [liquid_request(b, w) for b in SUBSET for w in WIDTHS]
        RunScheduler(jobs=1, cache=RunCache(tmp_path)).run_many(requests)

        warm_cache = RunCache(tmp_path)
        loads = []
        real_load = RunCache.load
        monkeypatch.setattr(
            RunCache, "load",
            lambda self, key: loads.append(key) or real_load(self, key))
        warm = RunScheduler(jobs=1, cache=warm_cache)
        warm.run_many(requests + [liquid_request("LU", 4)])
        # The cold key was filtered out by the probe, never load()ed.
        assert len(loads) == len(requests)
        assert warm.stats.cache_hits == len(requests)
        assert warm.stats.executed == 1

    def test_last_batch_records_provenance(self, tmp_path):
        request = liquid_request()
        scheduler = RunScheduler(jobs=1, cache=RunCache(tmp_path))
        scheduler.run(request)
        assert scheduler.last_batch == {request: "simulated"}
        scheduler.run(request)
        assert scheduler.last_batch == {request: "memo"}
        fresh = RunScheduler(jobs=1, cache=RunCache(tmp_path))
        fresh.run(request)
        assert fresh.last_batch == {request: "cache"}


class TestProgramMemoization:
    def test_one_build_per_program_id(self, monkeypatch):
        import repro.evaluation.runner as runner_mod
        builds = []
        real_build = runner_mod.build_request_program
        monkeypatch.setattr(
            runner_mod, "build_request_program",
            lambda request: builds.append(request.program_id)
            or real_build(request))
        scheduler = RunScheduler(jobs=1)
        # A width sweep: four requests, one shared liquid program.
        scheduler.run_many([liquid_request("LU", w) for w in (2, 4, 8, 16)])
        assert builds == [("LU", "liquid", 1)], \
            "the sweep must build its program exactly once"

    def test_keys_reuse_encoded_bytes(self, tmp_path, monkeypatch):
        from repro.isa import encoding
        import repro.evaluation.runner as runner_mod
        encodes = []
        real_encode = encoding.encode_program
        monkeypatch.setattr(
            runner_mod, "encode_program",
            lambda program: encodes.append(program.name)
            or real_encode(program))
        scheduler = RunScheduler(jobs=1, cache=RunCache(tmp_path))
        scheduler.run_many([liquid_request("LU", w) for w in (2, 4, 8, 16)])
        assert len(encodes) == 1, \
            "four keys against one program must encode it once"

    def test_workers_decode_shipped_bytes(self):
        from repro.evaluation.runner import _pool_worker
        from repro.isa.encoding import encode_program
        request = liquid_request()
        program = build_request_program(request)
        shipped = _pool_worker(request, encode_program(program))
        rebuilt = _pool_worker(request)
        assert shipped == rebuilt, \
            "decoded-program runs must match rebuilt-program runs exactly"


class TestEvalContextIntegration:
    def test_jobs_1_and_4_produce_identical_rows_and_tables(self):
        rows = {}
        tables = {}
        for jobs in (1, 4):
            ctx = EvalContext(SUBSET, scheduler=RunScheduler(jobs=jobs))
            ctx.prefetch(figure6_requests(ctx, WIDTHS)
                         + table6_requests(ctx))
            rows[jobs] = {
                "figure6": figure6_speedups(ctx, WIDTHS),
                "table6": table6_call_distances(ctx),
            }
            tables[jobs] = (
                report.render_figure6(rows[jobs]["figure6"], WIDTHS)
                + report.render_table6(rows[jobs]["table6"])
            )
        assert rows[1] == rows[4]
        assert tables[1] == tables[4], \
            "rendered tables must be byte-identical across --jobs"

    def test_prefetch_leaves_nothing_to_simulate(self):
        scheduler = RunScheduler(jobs=1)
        ctx = EvalContext(["LU"], scheduler=scheduler)
        ctx.prefetch(native_overhead_requests(ctx, width=8))
        executed = scheduler.stats.executed
        native_overhead(ctx, width=8)  # includes the 2x scaled runs
        assert scheduler.stats.executed == executed, \
            "prefetch must cover every run native_overhead needs"

    def test_scaled_runs_are_memoized(self):
        scheduler = RunScheduler(jobs=1)
        ctx = EvalContext(["LU"], scheduler=scheduler)
        first = ctx.scaled_run("LU", 8, factor=2)
        again = ctx.scaled_run("LU", 8, factor=2)
        assert first is again
        assert scheduler.stats.executed == 1

    def test_context_shares_runs_with_persistent_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = EvalContext(["LU"], scheduler=RunScheduler(
            jobs=1, cache=RunCache(cache_dir)))
        rows_first = figure6_speedups(first, (8,))

        second_scheduler = RunScheduler(jobs=1, cache=RunCache(cache_dir))
        second = EvalContext(["LU"], scheduler=second_scheduler)
        rows_second = figure6_speedups(second, (8,))
        assert rows_first == rows_second
        assert second_scheduler.stats.executed == 0
        assert second_scheduler.stats.cache_hits == 2  # baseline + liquid
