"""Unit tests for the flat memory model, caches, and alignment helpers."""

import pytest

from repro.memory.alignment import (
    align_up,
    is_aligned,
    is_power_of_two,
    vector_alignment_ok,
)
from repro.memory.cache import Cache, CacheConfig
from repro.memory.memory import Memory, MemoryError_, MemoryProtectionError


class TestMemoryScalars:
    def test_roundtrip_each_type(self):
        mem = Memory(256)
        mem.store(0, "i8", -5)
        mem.store(2, "i16", -1000)
        mem.store(4, "i32", -100000)
        mem.store(8, "f32", 1.25)
        assert mem.load(0, "i8") == -5
        assert mem.load(2, "i16") == -1000
        assert mem.load(4, "i32") == -100000
        assert mem.load(8, "f32") == 1.25

    def test_unsigned_loads(self):
        mem = Memory(16)
        mem.store(0, "i8", -1)
        assert mem.load(0, "i8", signed=False) == 255
        mem.store(2, "i16", -1)
        assert mem.load(2, "i16", signed=False) == 65535

    def test_narrow_store_truncates(self):
        mem = Memory(16)
        mem.store(0, "i8", 0x1FF)
        assert mem.load(0, "i8", signed=False) == 0xFF

    def test_little_endian(self):
        mem = Memory(16)
        mem.store(0, "i32", 0x01020304)
        assert mem.read_bytes(0, 4) == b"\x04\x03\x02\x01"

    def test_f32_rounds_through_binary32(self):
        mem = Memory(16)
        mem.store(0, "f32", 0.1)
        value = mem.load(0, "f32")
        assert value != 0.1  # double 0.1 is not representable in binary32
        assert abs(value - 0.1) < 1e-7

    def test_out_of_range(self):
        mem = Memory(8)
        with pytest.raises(MemoryError_):
            mem.load(6, "i32")
        with pytest.raises(MemoryError_):
            mem.store(8, "i8", 1)
        with pytest.raises(MemoryError_):
            mem.load(-1, "i8")


class TestMemoryVectors:
    def test_vector_roundtrip(self):
        mem = Memory(64)
        mem.store_vector(0, "i16", [1, -2, 3, -4])
        assert mem.load_vector(0, "i16", 4) == [1, -2, 3, -4]

    def test_vector_float(self):
        mem = Memory(64)
        mem.store_vector(0, "f32", [0.5, 1.5])
        assert mem.load_vector(0, "f32", 2) == [0.5, 1.5]

    def test_vector_matches_scalar_layout(self):
        mem = Memory(64)
        mem.store_vector(0, "i32", [10, 20, 30])
        assert mem.load(4, "i32") == 20


class TestProtection:
    def test_store_into_protected_range(self):
        mem = Memory(64)
        mem.protect(16, 32)
        mem.store(0, "i32", 1)  # outside: fine
        with pytest.raises(MemoryProtectionError):
            mem.store(16, "i32", 1)
        with pytest.raises(MemoryProtectionError):
            mem.store(14, "i32", 1)  # straddles the boundary

    def test_loads_from_protected_range_allowed(self):
        mem = Memory(64)
        mem.store(16, "i32", 9)
        mem.protect(16, 32)
        assert mem.load(16, "i32") == 9

    def test_bad_protect_range(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.protect(32, 16)


class TestAlignment:
    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16

    def test_align_up_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            align_up(4, 0)

    def test_is_aligned(self):
        assert is_aligned(32, 16)
        assert not is_aligned(33, 16)

    def test_is_power_of_two(self):
        assert all(is_power_of_two(v) for v in (1, 2, 4, 8, 1024))
        assert not any(is_power_of_two(v) for v in (0, 3, 6, -4))

    def test_vector_alignment(self):
        assert vector_alignment_ok(0, 4, 8)
        assert vector_alignment_ok(32, 4, 8)
        assert not vector_alignment_ok(16, 4, 8)  # needs 32-byte alignment


class TestCache:
    def _cache(self, **kw) -> Cache:
        return Cache(CacheConfig(**kw))

    def test_geometry_16k_64way(self):
        config = CacheConfig(size_bytes=16 * 1024, assoc=64, line_bytes=32)
        assert config.num_sets == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=32, assoc=64, line_bytes=32).num_sets

    def test_miss_then_hit(self):
        cache = self._cache(hit_latency=1, miss_penalty=30)
        assert cache.access(0x100) == 31
        assert cache.access(0x104) == 1  # same line
        assert cache.stats.reads == 2
        assert cache.stats.read_misses == 1

    def test_line_straddle_counts_both_lines(self):
        cache = self._cache(line_bytes=32)
        cycles = cache.access(30, nbytes=4)
        assert cache.stats.reads == 2  # two lines touched
        assert cycles >= 2

    def test_lru_eviction(self):
        cache = self._cache(size_bytes=64, assoc=2, line_bytes=32,
                            miss_penalty=10)
        # One set; two ways.  Lines A, B fill it; touching A then loading C
        # must evict B.
        cache.access(0)        # A miss
        cache.access(64)       # B miss (same set)
        cache.access(0)        # A hit, makes B LRU
        cache.access(128)      # C miss, evicts B
        assert cache.access(0) == 1          # A still resident
        assert cache.access(64) == 11        # B was evicted

    def test_writeback_counting(self):
        cache = self._cache(size_bytes=64, assoc=1, line_bytes=32)
        cache.access(0, is_write=True)     # dirty A
        cache.access(64, is_write=False)   # evicts dirty A -> writeback
        assert cache.stats.writebacks == 1

    def test_contains_is_side_effect_free(self):
        cache = self._cache()
        cache.access(0)
        reads = cache.stats.reads
        assert cache.contains(0)
        assert not cache.contains(1 << 20)
        assert cache.stats.reads == reads

    def test_reset(self):
        cache = self._cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.contains(0)

    def test_miss_rate(self):
        cache = self._cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
