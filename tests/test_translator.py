"""Unit tests for the dynamic translator: Table 3 rules, idioms, aborts.

These tests drive the translator directly with a scalar program executed
on a bare executor — no Machine — so each rule's effect on the microcode
buffer is observable in isolation.
"""

from repro.core.translate.translator import (
    AbortReason,
    DynamicTranslator,
    TranslatorConfig,
)
from repro.isa.instructions import Imm, Reg, VImm
from repro.simd.permutations import PermPattern

from test_executor import make_state


def translate(source: str, width: int = 4, function: str = "fn",
              **config_kw):
    """Run *source*'s function `fn` and feed its retire stream through a
    translator; returns (TranslationResult, final machine state)."""
    state, executor = make_state(source)
    program = state.program
    config = TranslatorConfig(width=width, **config_kw)
    translator = DynamicTranslator(config, resolve_label=program.label_index)
    translator.begin(function)
    # Execute from the function entry to its ret.
    state.pc = program.label_index(function)
    state.regs.write("r14", len(program.instructions))  # sentinel return
    steps = 0
    while True:
        steps += 1
        assert steps < 200000, "runaway function"
        instr = program.instructions[state.pc]
        event = executor.execute(instr)
        translator.observe(event)
        if instr.opcode == "ret":
            break
    return translator.finish(ret_cycle=1000), state


def ucode_ops(result):
    return [i.opcode for i in result.entry.fragment.instructions]


BASIC_LOOP = """
.data A f32 16 = 1.0
.data B f32 16 = 0.0
fn:
    mov r0, #0
L:
    ldf f2, [A + r0]
    fmul f3, f2, #2.0
    stf f3, [B + r0]
    add r0, r0, #1
    cmp r0, #16
    blt L
    ret
"""


class TestBasicRules:
    def test_simple_loop_translates(self):
        result, _ = translate(BASIC_LOOP, width=4)
        assert result.ok
        assert ucode_ops(result) == ["mov", "vld", "vmul", "vst", "add",
                                     "cmp", "blt"]

    def test_effective_width_patches_increment(self):
        result, _ = translate(BASIC_LOOP, width=4)
        add = result.entry.fragment.instructions[4]
        assert add.srcs[1] == Imm(4)
        assert result.entry.width == 4

    def test_effective_width_capped_by_trip(self):
        src = BASIC_LOOP.replace("16", "8")
        result, _ = translate(src, width=16)
        assert result.ok
        assert result.entry.width == 8  # the paper's MPEG2 effect

    def test_vector_registers_mirror_scalar_names(self):
        result, _ = translate(BASIC_LOOP, width=4)
        vld = result.entry.fragment.instructions[1]
        assert vld.dst == Reg("vf2")

    def test_loop_label_resolves_into_fragment(self):
        result, _ = translate(BASIC_LOOP, width=4)
        fragment = result.entry.fragment
        blt = fragment.instructions[-1]
        assert blt.target in fragment.labels
        assert fragment.label_index(blt.target) == 1  # the vld

    def test_static_instruction_count(self):
        result, _ = translate(BASIC_LOOP, width=4)
        assert result.observed_static == 8  # 7 body/scaffold + ret

    def test_ready_cycle_includes_latency(self):
        result, _ = translate(BASIC_LOOP, width=4, cycles_per_instruction=10)
        assert result.entry.ready_cycle == 1000 + 10 * result.observed_static

    def test_reduction_rule9(self):
        src = """
        .data A f32 16 = 1.0
        fn:
            fmov f1, #0.0
            mov r0, #0
        L:
            ldf f2, [A + r0]
            fadd f1, f1, f2
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "vredsum" in ucode_ops(result)

    def test_int_accumulator_demoted_from_induction(self):
        # `mov r1, #0` looks like rule 1; the reduction must demote it.
        src = """
        .data A i32 16 = 3
        fn:
            mov r1, #0
            mov r0, #0
        L:
            ldw r2, [A + r0]
            add r1, r1, r2
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "vredsum" in ucode_ops(result)

    def test_category2_immediate_operand(self):
        result, _ = translate(BASIC_LOOP, width=4)
        vmul = result.entry.fragment.instructions[2]
        assert vmul.srcs[1] == Imm(2.0)

    def test_multi_loop_function(self):
        src = """
        .data A f32 16 = 1.0
        .data B f32 16 = 0.0
        fn:
            mov r0, #0
        L1:
            ldf f2, [A + r0]
            stf f2, [B + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L1
            mov r0, #0
        L2:
            ldf f3, [B + r0]
            fadd f3, f3, f3
            stf f3, [B + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L2
            ret
        """
        result, _ = translate(src, width=8)
        assert result.ok
        ops = ucode_ops(result)
        assert ops.count("blt") == 2
        assert ops.count("mov") == 2

    def test_rsb_zero_becomes_vneg(self):
        src = """
        .data A i32 16 = 5
        .data B i32 16 = 0
        fn:
            mov r0, #0
        L:
            ldw r2, [A + r0]
            rsb r3, r2, #0
            stw r3, [B + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "vneg" in ucode_ops(result)

    def test_pass_through_scalar_pre_post(self):
        src = """
        .data A f32 16 = 1.0
        .data OUT f32 1 = 0.0
        fn:
            fmov f1, #0.0
            mov r0, #0
        L:
            ldf f2, [A + r0]
            fadd f1, f1, f2
            add r0, r0, #1
            cmp r0, #16
            blt L
            stf f1, [OUT + #0]
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        ops = ucode_ops(result)
        assert ops[0] == "fmov"
        assert ops[-1] == "stf"


class TestPermutationRules:
    PERM_LOOP = """
    .data A f32 16 = 1.0
    .data B f32 16 = 0.0
    .rodata off i32 = {offs}
    fn:
        mov r0, #0
    L:
        ldw r3, [off + r0]
        add r4, r0, r3
        ldf f2, [A + r4]
        stf f2, [B + r0]
        add r0, r0, #1
        cmp r0, #16
        blt L
        ret
    """

    def _offsets(self, pattern):
        return ", ".join(str(v) for v in pattern.offsets(16))

    def test_load_perm_recognized(self):
        src = self.PERM_LOOP.format(offs=self._offsets(PermPattern("bfly", 4)))
        result, _ = translate(src, width=8)
        assert result.ok
        ops = ucode_ops(result)
        assert "vbfly" in ops

    def test_offset_load_collapsed(self):
        src = self.PERM_LOOP.format(offs=self._offsets(PermPattern("bfly", 4)))
        result, _ = translate(src, width=8)
        ops = ucode_ops(result)
        # Only the data load remains; the offset vld was collapsed.
        assert ops.count("vld") == 1

    def test_collapse_can_be_disabled(self):
        src = self.PERM_LOOP.format(offs=self._offsets(PermPattern("bfly", 4)))
        result, _ = translate(src, width=8, collapse_offset_loads=False)
        assert ucode_ops(result).count("vld") == 2

    def test_unknown_offsets_abort(self):
        offs = ", ".join(["1"] * 16)
        result, _ = translate(self.PERM_LOOP.format(offs=offs), width=8)
        assert not result.ok
        assert result.reason is AbortReason.UNSUPPORTED_PATTERN

    def test_pattern_wider_than_hardware_aborts(self):
        src = self.PERM_LOOP.format(offs=self._offsets(PermPattern("bfly", 8)))
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.UNSUPPORTED_PATTERN

    def test_restricted_repertoire_aborts(self):
        src = self.PERM_LOOP.format(offs=self._offsets(PermPattern("rev", 4)))
        result, _ = translate(
            src, width=8, permutations=(PermPattern("bfly", 4),)
        )
        assert not result.ok
        assert result.reason is AbortReason.UNSUPPORTED_PATTERN

    def test_store_perm_uses_scratch_register(self):
        src = """
        .data A f32 16 = 1.0
        .data B f32 16 = 0.0
        .rodata off i32 = {offs}
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
            ldw r3, [off + r0]
            add r4, r0, r3
            stf f2, [B + r4]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """.format(offs=self._offsets(PermPattern("rev", 4)))
        result, _ = translate(src, width=8)
        assert result.ok
        instrs = result.entry.fragment.instructions
        perm = [i for i in instrs if i.opcode == "vrev"][0]
        store = [i for i in instrs if i.opcode == "vst"][0]
        assert perm.dst == Reg("vf15")
        assert store.srcs[0] == Reg("vf15")


class TestConstRewrite:
    MASK_LOOP = """
    .data A f32 16 = 1.5
    .data B f32 16 = 0.0
    .rodata m i32 = {mask}
    fn:
        mov r0, #0
    L:
        ldf f2, [A + r0]
        ldw r3, [m + r0]
        and f4, f2, r3
        stf f4, [B + r0]
        add r0, r0, #1
        cmp r0, #16
        blt L
        ret
    """

    def test_periodic_mask_becomes_immediate(self):
        mask = ", ".join(["0", "-1"] * 8)
        result, _ = translate(self.MASK_LOOP.format(mask=mask), width=4)
        assert result.ok
        vand = [i for i in result.entry.fragment.instructions
                if i.opcode == "vand"][0]
        assert vand.srcs[1] == VImm((0, -1, 0, -1))
        # The mask load collapses once the immediate is materialized.
        assert ucode_ops(result).count("vld") == 1

    def test_aperiodic_mask_keeps_register_form(self):
        mask = ", ".join(str(i) for i in range(16))  # period 16 > width 4
        result, _ = translate(self.MASK_LOOP.format(mask=mask), width=4)
        assert result.ok
        vand = [i for i in result.entry.fragment.instructions
                if i.opcode == "vand"][0]
        assert vand.srcs[1] == Reg("v3")
        assert ucode_ops(result).count("vld") == 2  # mask load kept

    def test_const_immediates_can_be_disabled(self):
        mask = ", ".join(["0", "-1"] * 8)
        result, _ = translate(self.MASK_LOOP.format(mask=mask), width=4,
                              const_immediates=False)
        vand = [i for i in result.entry.fragment.instructions
                if i.opcode == "vand"][0]
        assert vand.srcs[1] == Reg("v3")


class TestIdiomRecognition:
    SAT_LOOP = """
    .data A i16 16 = 30000
    .data B i16 16 = 30000
    .data C i16 16 = 0
    fn:
        mov r0, #0
    L:
        ldh r2, [A + r0]
        ldh r3, [B + r0]
        add r4, r2, r3
        cmp r4, #32767
        movgt r4, #32767
        cmp r4, #-32768
        movlt r4, #-32768
        sth r4, [C + r0]
        add r0, r0, #1
        cmp r0, #16
        blt L
        ret
    """

    def test_saturation_collapses_to_vqadd(self):
        result, _ = translate(self.SAT_LOOP, width=4)
        assert result.ok
        ops = ucode_ops(result)
        assert "vqadd" in ops
        assert "movgt" not in ops and "cmp" in ops  # loop cmp survives
        vq = [i for i in result.entry.fragment.instructions
              if i.opcode == "vqadd"][0]
        assert vq.elem == "i16"

    def test_unsupported_bounds_abort(self):
        src = self.SAT_LOOP.replace("#32767", "#1000").replace("#-32768",
                                                               "#-1000")
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.UNSUPPORTED_SATURATION

    def test_old_generation_without_saturation_aborts(self):
        result, _ = translate(self.SAT_LOOP, width=4,
                              supports_saturation=False)
        assert not result.ok
        assert result.reason is AbortReason.UNSUPPORTED_SATURATION

    def test_broken_idiom_aborts(self):
        # A compare of vector data that is not part of any idiom.
        src = """
        .data A i16 16 = 1
        fn:
            mov r0, #0
        L:
            ldh r2, [A + r0]
            cmp r2, r2
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.IDIOM_BROKEN

    def test_minmax_idiom_collapses(self):
        src = """
        .data A i16 16 = 5
        .data B i16 16 = 9
        .data C i16 16 = 0
        fn:
            mov r0, #0
        L:
            ldh r2, [A + r0]
            ldh r3, [B + r0]
            mov r4, r2
            cmp r2, r3
            movgt r4, r3
            sth r4, [C + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "vmin" in ucode_ops(result)

    def test_float_max_idiom_collapses(self):
        src = """
        .data A f32 16 = 5.0
        .data B f32 16 = 9.0
        .data C f32 16 = 0.0
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
            ldf f3, [B + r0]
            fmov f4, f2
            fcmp f2, f3
            fmovlt f4, f3
            stf f4, [C + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert result.ok
        assert "vmax" in ucode_ops(result)


class TestAborts:
    def test_illegal_opcode(self):
        src = """
        .data A f32 16 = 1.0
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
            fdiv f3, f2, f2
            stf f3, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.ILLEGAL_OPCODE

    def test_nested_call(self):
        src = """
        fn:
            mov r0, #0
            bl helper
            ret
        helper:
            nop
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.NESTED_CALL

    def test_no_loop(self):
        src = "fn:\n    mov r1, #7\n    ret"
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.NO_LOOP

    def test_trip_without_pow2_factor(self):
        src = BASIC_LOOP.replace("#16", "#15")
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.TRIP_NOT_VECTORIZABLE

    def test_buffer_overflow(self):
        body = "\n".join(
            f"    fadd f{3 + (i % 4)}, f2, f2" for i in range(70)
        )
        src = f"""
        .data A f32 16 = 1.0
        fn:
            mov r0, #0
        L:
            ldf f2, [A + r0]
        {body}
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.BUFFER_OVERFLOW

    def test_external_abort(self):
        state, executor = make_state(BASIC_LOOP)
        program = state.program
        translator = DynamicTranslator(
            TranslatorConfig(width=4), resolve_label=program.label_index
        )
        translator.begin("fn")
        state.pc = program.label_index("fn")
        state.regs.write("r14", len(program.instructions))
        for _ in range(4):
            instr = program.instructions[state.pc]
            translator.observe(executor.execute(instr))
        translator.abort_external()  # context switch mid-translation
        result = translator.finish()
        assert not result.ok
        assert result.reason is AbortReason.EXTERNAL

    def test_insufficient_iterations_for_permutation(self):
        # Loop trip 16 but effective width 16 needs 16 offset samples;
        # shrink trip to 4 with width 8 -> effective width 4, but pattern
        # period 8 cannot fit: abort via CAM, not a crash.
        offs = ", ".join(str(v) for v in PermPattern("bfly", 8).offsets(16))
        src = TestPermutationRules.PERM_LOOP.format(offs=offs)
        src = src.replace("cmp r0, #16", "cmp r0, #4")
        result, _ = translate(src, width=8)
        assert not result.ok

    def test_scalar_store_indexed_by_induction_aborts(self):
        src = """
        .data A i32 16 = 0
        fn:
            mov r1, #7
            mov r0, #0
        L:
            stw r1, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
        assert result.reason is AbortReason.INCONSISTENT

    def test_arbitrary_indexed_load_aborts(self):
        # VTBL-style runtime indices are not representable (paper 3.3).
        src = """
        .data A i32 16 = 1
        .data IDX i32 16 = 3
        fn:
            mov r0, #0
        L:
            ldw r2, [IDX + r0]
            ldw r3, [A + r2]
            add r0, r0, #1
            cmp r0, #16
            blt L
            ret
        """
        result, _ = translate(src, width=4)
        assert not result.ok
