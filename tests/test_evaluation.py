"""Tests for the experiment drivers (on small benchmark subsets)."""

import pytest

from repro.evaluation.experiments import (
    EvalContext,
    code_size_overhead,
    figure6_speedups,
    native_overhead,
    table2_hw_cost,
    table5_outlined_sizes,
    table6_call_distances,
    translation_latency_ablation,
    ucode_cache_ablation,
)
from repro.evaluation import report

SUBSET = ["MPEG2 Dec.", "GSM Enc."]


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(SUBSET)


class TestTable2:
    def test_reference_row(self):
        rows = table2_hw_cost([8])
        row = rows[0]
        assert row["area_cells"] == 174_117
        assert row["crit_path_gates"] == 16
        assert row["delay_ns"] == 1.51
        assert row["frequency_mhz"] > 650

    def test_width_sweep_monotone_area(self):
        rows = table2_hw_cost([2, 4, 8, 16])
        areas = [r["area_cells"] for r in rows]
        assert areas == sorted(areas)

    def test_rendering(self):
        text = report.render_table2(table2_hw_cost([8]))
        assert "174,117" in text and "1.51" in text


class TestTable5(object):
    def test_sizes_reported(self, ctx):
        rows = table5_outlined_sizes(ctx)
        assert [r["benchmark"] for r in rows] == SUBSET
        for row in rows:
            assert 0 < row["mean"] <= row["max"] <= 64
            assert row["functions"]

    def test_rendering(self, ctx):
        text = report.render_table5(table5_outlined_sizes(ctx))
        assert "MPEG2 Dec." in text


class TestTable6:
    def test_distances_bucketed(self, ctx):
        rows = table6_call_distances(ctx, width=8)
        for row in rows:
            total = row["lt150"] + row["lt300"] + row["gt300"]
            assert total == len(row["distances"]) >= 1
            assert row["mean"] > 0

    def test_mpeg2_has_short_distances(self, ctx):
        rows = {r["benchmark"]: r for r in table6_call_distances(ctx, width=8)}
        mpeg = rows["MPEG2 Dec."]
        gsm = rows["GSM Enc."]
        # MPEG2 hot loops run back-to-back; GSM has real work between calls.
        assert min(mpeg["distances"]) < min(gsm["distances"])
        assert gsm["lt150"] == 0

    def test_rendering(self, ctx):
        text = report.render_table6(table6_call_distances(ctx, width=8))
        assert "Mean" in text


class TestFigure6:
    def test_speedups_increase_with_width_generally(self, ctx):
        rows = figure6_speedups(ctx, widths=(2, 8))
        for row in rows:
            assert row["speedups"][8] >= row["speedups"][2] * 0.95
            assert row["speedups"][8] > 1.0

    def test_rendering(self, ctx):
        text = report.render_figure6(figure6_speedups(ctx, widths=(2, 8)),
                                     (2, 8))
        assert "w=2" in text


class TestNativeOverhead:
    def test_steady_state_overhead_is_zero(self, ctx):
        rows = native_overhead(ctx, width=8)
        for row in rows:
            # Once translated, the injected microcode is identical to
            # "built-in ISA support": the paper's ~0 overhead claim.
            assert abs(row["steady_slowdown_pct"]) < 0.5
            assert row["one_time_cycles"] >= 0
            assert row["native_speedup"] >= row["liquid_speedup"]

    def test_rendering(self, ctx):
        text = report.render_native_overhead(native_overhead(ctx, width=8))
        assert "Steady%" in text


class TestCodeSize:
    def test_overhead_below_one_percent(self, ctx):
        rows = code_size_overhead(ctx)
        for row in rows:
            assert 0.0 <= row["overhead_pct"] < 1.0, row

    def test_rendering(self, ctx):
        text = report.render_code_size(code_size_overhead(ctx))
        assert "%" in text


class TestAblations:
    def test_ucode_cache_sweep(self):
        rows = ucode_cache_ablation(benchmark="MPEG2 Dec.", width=8,
                                    entry_counts=(1, 2, 8))
        by_entries = {r["entries"]: r for r in rows}
        # Two hot loops: a 2+ entry cache captures the working set.
        assert by_entries[2]["simd_run_fraction"] >= \
            by_entries[1]["simd_run_fraction"]
        assert by_entries[8]["evictions"] == 0
        assert by_entries[8]["simd_run_fraction"] > 0.8

    def test_translation_latency_sweep(self):
        rows = translation_latency_ablation(
            benchmark="GSM Enc.", width=8,
            cycles_per_instruction=(1, 10, 100000))
        assert rows[0]["slowdown_pct"] == 0.0
        # Tens of cycles per instruction barely matter (the paper's claim)...
        assert rows[1]["slowdown_pct"] < 5.0
        # ...but a pathologically slow translator degrades to scalar.
        assert rows[-1]["slowdown_pct"] > rows[1]["slowdown_pct"]

    def test_ablation_rendering(self):
        rows = ucode_cache_ablation(benchmark="MPEG2 Dec.", width=8,
                                    entry_counts=(1, 8))
        text = report.render_ablation(rows, "entries", "ucache sweep")
        assert "ucache sweep" in text

    def test_breakdown_rendering(self):
        rows = table2_hw_cost([8])
        text = report.render_breakdown(rows[0]["breakdown"])
        assert "register_state" in text
