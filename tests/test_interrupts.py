"""Tests for external aborts (context switches) during translation.

The paper: "there is an abort signal from the base pipeline to stop
translation in the event of a context switch or other interrupt".
Unlike rule violations, these aborts are transient — the machine retries
the translation on a later call.
"""

from repro.core.scalarize import build_liquid_program
from repro.core.translate.translator import AbortReason
from repro.system.metrics import arrays_equal

from conftest import run_program, simple_kernel


class TestInterruptAborts:
    def test_constant_interrupts_keep_program_correct(self):
        kernel = simple_kernel(calls=10)
        liquid = build_liquid_program(kernel)
        normal = run_program(liquid, width=8)
        noisy = run_program(liquid, width=8, interrupt_interval=400)
        assert arrays_equal(normal, noisy)

    def test_frequent_interrupts_force_scalar_execution(self):
        kernel = simple_kernel(calls=10)
        liquid = build_liquid_program(kernel)
        noisy = run_program(liquid, width=8, interrupt_interval=400)
        # Translation of this loop takes >400 cycles, so every attempt
        # is externally aborted and all calls run scalar.
        assert noisy.functions["hot_fn"].simd_runs == 0
        assert all(t.reason is AbortReason.EXTERNAL
                   for t in noisy.translations)

    def test_external_aborts_are_retried_not_blacklisted(self):
        kernel = simple_kernel(calls=10)
        liquid = build_liquid_program(kernel)
        noisy = run_program(liquid, width=8, interrupt_interval=400)
        # One attempt per call: the machine kept retrying.
        assert len(noisy.translations) == 10

    def test_rare_interrupts_eventually_translate(self):
        kernel = simple_kernel(calls=10)
        liquid = build_liquid_program(kernel)
        result = run_program(liquid, width=8, interrupt_interval=100_000)
        assert result.successful_translations >= 1
        assert result.functions["hot_fn"].simd_runs > 0

    def test_interrupted_runs_cost_more_cycles(self):
        kernel = simple_kernel(calls=10)
        liquid = build_liquid_program(kernel)
        normal = run_program(liquid, width=8)
        noisy = run_program(liquid, width=8, interrupt_interval=400)
        assert noisy.cycles > normal.cycles
