"""Macro-kernel layer: shape recognition, fallback, cache identity.

Three angles on ``repro/interp/macro.py``:

* **Recognition** — the loops the dynamic translator actually emits
  (canonical do-while: affine ``vld``/``vst``, vector ALU body, counted
  back-branch) must produce a whole-loop plan, with the shape's facts
  (head, body length, induction register, trip count) matching the
  fragment text.

* **Rejection** — any deviation from the canonical shape must yield
  *no* plan, never a wrong kernel: the per-block path is the safety
  net, so the analyzer's only legal failure mode is declining.  Each
  case here mutates one facet of a real translated fragment.

* **Run-cache identity (ISSUE 4 satellite)** — ``CACHE_FORMAT_VERSION``
  was deliberately not bumped: macro-engine results are bit-identical,
  run keys are engine-invariant, and a macro run answers straight from
  entries a turbo run wrote (zero re-simulations on a warm cache).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scalarize import build_liquid_program
from repro.evaluation.experiments import EvalContext
from repro.evaluation.runcache import RunCache, run_key
from repro.evaluation.runner import RunScheduler, build_request_program
from repro.interp.turbo import fragment_tables_for
from repro.isa.instructions import Imm, Mem, Reg
from repro.kernels.suite import build_kernel
from repro.pipeline.core import PipelineModel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTH = 8
OFFSET = 1 << 20  # arbitrary fragment PC offset, as the machine assigns


def _translated_entries(kernel_name):
    """Run *kernel_name* once and return its completed translations."""
    program = build_liquid_program(build_kernel(kernel_name))
    config = MachineConfig(accelerator=config_for_width(WIDTH),
                           engine="turbo")
    result = Machine(config).run(program)
    entries = [t.entry for t in result.translations
               if t.ok and t.entry is not None]
    assert entries, f"{kernel_name}: no completed translations"
    return entries


def _plan_for(fragment, width=WIDTH, macro=True):
    _, _, _, plan = fragment_tables_for(
        fragment, PipelineModel(), width, OFFSET, macro=macro)
    return plan


# -- recognition --------------------------------------------------------------

@pytest.mark.parametrize("kernel_name", ["FIR", "FFT", "LU"])
def test_translated_loops_are_recognized(kernel_name):
    """Every loop the translator emits for these kernels matches the
    canonical shape: the plan covers each backward ``blt`` (plus, for
    chain-shaped fragments, a whole-fragment shape keyed at pc 0)."""
    for entry in _translated_entries(kernel_name):
        fragment = entry.fragment
        plan = _plan_for(fragment, entry.width)
        assert plan, f"{entry.function}: no whole-loop plan"
        back_branches = [
            pc for pc, instr in enumerate(fragment.instructions)
            if instr.opcode == "blt"
            and fragment.labels.get(instr.target, pc + 1) <= pc]
        loop_shapes = [k for k in plan.values() if hasattr(k, "branch_pc")]
        assert sorted(k.branch_pc for k in loop_shapes) == back_branches


def test_fir_shape_facts():
    """The FIR fragment's single loop, checked field by field.

    The fragment is also chain-shaped (mov prologue + one counted
    loop + scalar-store epilogue), so the plan carries a whole-fragment
    chain shape at pc 0 alongside the loop shape at its head.
    """
    entry, = _translated_entries("FIR")
    fragment = entry.fragment
    plan = _plan_for(fragment)
    head = fragment.labels["u16"]
    assert set(plan) == {0, head}
    chain = plan[0]
    # one whole-fragment invocation retires every straight-line
    # instruction once plus the loop body once per trip
    assert chain.blen >= len(fragment.instructions)
    assert chain.trips(None) == 1
    shape = plan[head]
    branch_pc = next(pc for pc, i in enumerate(fragment.instructions)
                     if i.opcode == "blt")
    assert shape.branch_pc == branch_pc
    assert shape.blen == branch_pc - head + 1
    assert shape.width == entry.width
    # induction register and trip count from the add/cmp pair
    cmp_instr = fragment.instructions[branch_pc - 1]
    assert shape.induction == cmp_instr.srcs[0].name
    assert shape.trip == cmp_instr.srcs[1].value


def test_turbo_gets_no_plan():
    """Without macro=True the memo entry carries plan=None — the turbo
    engine must never take the whole-loop path."""
    entry, = _translated_entries("FIR")
    assert _plan_for(entry.fragment, macro=False) is None


# -- rejection ----------------------------------------------------------------

def _mutate(fragment, pc, **changes):
    """Copy *fragment* with instruction *pc* replaced field-wise."""
    clone = dataclasses.replace(fragment.instructions[pc], **changes) \
        if changes else fragment.instructions[pc]
    copied = type(fragment)(fragment.name)
    copied.instructions = list(fragment.instructions)
    copied.instructions[pc] = clone
    copied.labels = dict(fragment.labels)
    copied.data = dict(fragment.data)
    copied.entry = fragment.entry
    return copied


@pytest.fixture(scope="module")
def fir_fragment():
    entry, = _translated_entries("FIR")
    return entry.fragment


def _pc_of(fragment, opcode):
    return next(pc for pc, i in enumerate(fragment.instructions)
                if i.opcode == opcode)


def test_reject_non_affine_address(fir_fragment):
    """A load not indexed by the induction register is not streamable."""
    pc = _pc_of(fir_fragment, "vld")
    instr = fir_fragment.instructions[pc]
    bad = _mutate(fir_fragment, pc,
                  mem=Mem(base=instr.mem.base, index=Imm(0)))
    assert _plan_for(bad) is None


def test_reject_loop_carried_vreg(fir_fragment):
    """A vector register read before its in-body definition carries a
    dependence across trips — whole-array evaluation would be wrong."""
    pc = _pc_of(fir_fragment, "vmul")
    instr = fir_fragment.instructions[pc]
    bad = _mutate(fir_fragment, pc, srcs=(instr.dst, instr.srcs[1]))
    assert _plan_for(bad) is None


def test_reject_non_immediate_trip(fir_fragment):
    """A register-valued loop bound can change mid-loop; the trip count
    must be a literal."""
    pc = _pc_of(fir_fragment, "cmp")
    instr = fir_fragment.instructions[pc]
    bad = _mutate(fir_fragment, pc, srcs=(instr.srcs[0], Reg("r5")))
    assert _plan_for(bad) is None


def test_reject_step_not_width(fir_fragment):
    """The induction step must equal the vector width (disjoint per-trip
    memory windows are what make batched execution order-safe)."""
    pc = _pc_of(fir_fragment, "add")
    instr = fir_fragment.instructions[pc]
    bad = _mutate(fir_fragment, pc, srcs=(instr.srcs[0], Imm(4)))
    assert _plan_for(bad) is None


def test_reject_unsupported_opcode(fir_fragment):
    """An opcode the kernel builder cannot lower declines the loop
    (veor is a real ISA opcode, but has no float-elementwise lowering)."""
    pc = _pc_of(fir_fragment, "vmul")
    bad = _mutate(fir_fragment, pc, opcode="veor")
    assert _plan_for(bad) is None


def test_reject_accumulator_bank_mismatch(fir_fragment):
    """A float reduction into an integer scalar register is malformed;
    the analyzer must decline rather than guess."""
    pc = _pc_of(fir_fragment, "vredsum")
    instr = fir_fragment.instructions[pc]
    bad = _mutate(fir_fragment, pc, dst=Reg("r1"),
                  srcs=(Reg("r1"), instr.srcs[1]))
    assert _plan_for(bad) is None


# -- run-cache identity (no CACHE_FORMAT_VERSION bump) ------------------------

SUBSET = ["FIR", "LU"]


def _prefetch_subset(engine, cache_dir):
    scheduler = RunScheduler(jobs=1, cache=RunCache(cache_dir))
    ctx = EvalContext(SUBSET, engine=engine, scheduler=scheduler)
    requests = [ctx.liquid_request(name, WIDTH) for name in SUBSET]
    ctx.prefetch(requests)
    return ctx, requests, scheduler


def test_macro_run_cache_byte_identity(tmp_path, monkeypatch):
    """Macro-engine cache entries are byte-identical to turbo's, and a
    macro context answers from a turbo-written cache without simulating."""
    turbo_dir = tmp_path / "turbo"
    macro_dir = tmp_path / "macro"
    _, turbo_requests, _ = _prefetch_subset("turbo", turbo_dir)
    _, macro_requests, _ = _prefetch_subset("macro", macro_dir)

    turbo_cache = RunCache(turbo_dir)
    macro_cache = RunCache(macro_dir)
    for turbo_req, macro_req in zip(turbo_requests, macro_requests):
        turbo_key = run_key(build_request_program(turbo_req),
                            turbo_req.config)
        macro_key = run_key(build_request_program(macro_req),
                            macro_req.config)
        assert turbo_key == macro_key, "run keys must be engine-invariant"
        assert turbo_cache.path_for(turbo_key).read_bytes() == \
            macro_cache.path_for(macro_key).read_bytes(), \
            f"{turbo_req.benchmark}: cached bytes differ across engines"

    machine_runs = []
    real_run = Machine.run
    monkeypatch.setattr(
        Machine, "run",
        lambda self, program: machine_runs.append(program.name)
        or real_run(self, program))
    warm_ctx, warm_requests, warm_scheduler = _prefetch_subset(
        "macro", turbo_dir)
    assert machine_runs == [], \
        f"macro re-simulated despite turbo-written cache: {machine_runs}"
    assert warm_scheduler.stats.cache_hits == len(SUBSET)
    assert warm_scheduler.stats.executed == 0
    warm_cycles = {r.benchmark: warm_ctx.run_request(r).cycles
                   for r in warm_requests}
    assert set(warm_cycles) == set(SUBSET)
