"""Unit tests for Table 1 scalarization: categories, idioms, fission."""

import pytest

from repro.core.scalarize.loop_ir import Kernel, LoopIRError, ScalarBlock, SimdLoop
from repro.core.scalarize.scalarizer import ScalarizeError, scalarize_loop
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.kernels.dsl import LoopBuilder


def scalar_opcodes(scalarized):
    return [i.opcode for seg in scalarized.segments for i in seg]


class TestDataParallel:
    def test_category1_float(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.add(x, y))
        out = scalarize_loop(b.build(), mvl=16)
        assert scalar_opcodes(out) == ["ldf", "ldf", "fadd", "stf"]
        assert len(out.segments) == 1

    def test_category1_int_elem_types(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        b.store("C", b.mul(x, x))
        out = scalarize_loop(b.build(), mvl=16)
        assert scalar_opcodes(out) == ["ldh", "mul", "sth"]

    def test_category2_scalar_constant(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        b.store("C", b.mul(x, b.imm(2.0)))
        out = scalarize_loop(b.build(), mvl=16)
        ops = scalar_opcodes(out)
        assert "fmul" in ops
        fmul = [i for seg in out.segments for i in seg if i.opcode == "fmul"][0]
        assert fmul.srcs[1] == Imm(2.0)

    def test_register_mapping_preserves_index(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")                       # vf2
        b.store("C", b.add(x, x))             # vf3
        out = scalarize_loop(b.build(), mvl=16)
        load = out.segments[0][0]
        assert load.dst == Reg("f2")

    def test_category3_lane_constant_becomes_array(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        b.store("C", b.mask(x, b.lanes([0, -1])))
        out = scalarize_loop(b.build(), mvl=16)
        mask_arrays = [a for a in out.new_arrays if "mask" in a.name]
        assert len(mask_arrays) == 1
        arr = mask_arrays[0]
        assert arr.read_only
        assert arr.values[:4] == [0, -1, 0, -1]
        assert len(arr) == 16
        ops = scalar_opcodes(out)
        assert "ldw" in ops and "and" in ops

    def test_category3_dedupes_identical_constants(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        y = b.load("B")
        m = b.lanes([0, 0, -1, -1])
        b.store("C", b.or_(b.mask(x, m), b.mask(y, m)))
        out = scalarize_loop(b.build(), mvl=16)
        mask_arrays = [a for a in out.new_arrays if "mask" in a.name]
        assert len(mask_arrays) == 1
        # ... and the temp is loaded only once per iteration.
        assert scalar_opcodes(out).count("ldw") == 1

    def test_float_lane_constant_uses_float_array(self):
        b = LoopBuilder("L", trip=8, elem="f32")
        x = b.load("A")
        b.store("C", b.mul(x, b.lanes([0.5, 2.0])))
        out = scalarize_loop(b.build(), mvl=8)
        cnst = [a for a in out.new_arrays if "cnst" in a.name][0]
        assert cnst.elem == "f32"
        assert "ldf" in scalar_opcodes(out)

    def test_category4_reduction_is_loop_carried(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        b.reduce("sum", x, acc="f1", init=0.0, store_to="out")
        out = scalarize_loop(b.build(), mvl=16)
        red = [i for seg in out.segments for i in seg if i.opcode == "fadd"][0]
        assert red.dst == Reg("f1")
        assert red.srcs[0] == Reg("f1")
        assert out.pre[0].opcode == "fmov"
        assert out.post[0].opcode == "stf"

    def test_reduction_must_be_loop_carried(self):
        loop = SimdLoop("L", trip=8, body=[
            Instruction("vld", dst=Reg("vf2"),
                        mem=Mem(base=Sym("A"), index=Reg("r0")), elem="f32"),
            Instruction("vredsum", dst=Reg("f1"),
                        srcs=(Reg("f2"), Reg("vf2")), elem="f32"),
        ])
        with pytest.raises(ScalarizeError):
            scalarize_loop(loop, mvl=8)


class TestIdioms:
    def test_saturating_add_idiom_shape(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.qadd(x, y))
        out = scalarize_loop(b.build(), mvl=16)
        ops = scalar_opcodes(out)
        assert ops == ["ldh", "ldh", "add", "cmp", "movgt", "cmp", "movlt",
                       "sth"]

    def test_saturating_bounds_match_elem(self):
        b = LoopBuilder("L", trip=16, elem="i8")
        x = b.load("A")
        b.store("C", b.qsub(x, x))
        out = scalarize_loop(b.build(), mvl=16)
        movs = [i for seg in out.segments for i in seg
                if i.opcode in ("movgt", "movlt")]
        assert movs[0].srcs[0] == Imm(127)
        assert movs[1].srcs[0] == Imm(-128)

    def test_saturating_float_rejected(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        b.store("C", b.qadd(x, x))
        with pytest.raises(ScalarizeError):
            scalarize_loop(b.build(), mvl=16)

    def test_minmax_pseudo_by_default(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.min(x, y))
        out = scalarize_loop(b.build(), mvl=16)
        assert "min" in scalar_opcodes(out)

    def test_minmax_idiom_mode(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.min(x, y))
        out = scalarize_loop(b.build(), mvl=16, minmax_idioms=True)
        ops = scalar_opcodes(out)
        assert "min" not in ops
        assert ops[2:5] == ["mov", "cmp", "movgt"]

    def test_float_minmax_idiom_mode(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.max(x, y))
        out = scalarize_loop(b.build(), mvl=16, minmax_idioms=True)
        ops = scalar_opcodes(out)
        assert ops[2:5] == ["fmov", "fcmp", "fmovlt"]

    def test_abd_idiom(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.abd(x, y))
        out = scalarize_loop(b.build(), mvl=16)
        assert scalar_opcodes(out)[2:5] == ["sub", "sub", "max"]

    def test_int_neg_and_abs_idioms(self):
        b = LoopBuilder("L", trip=16, elem="i16")
        x = b.load("A")
        b.store("C", b.neg(x))
        b.store("D", b.abs(x))
        out = scalarize_loop(b.build(), mvl=16)
        ops = scalar_opcodes(out)
        assert "rsb" in ops and "max" in ops

    def test_float_abd_uses_fsub_fabs(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        y = b.load("B")
        b.store("C", b.abd(x, y))
        out = scalarize_loop(b.build(), mvl=16)
        ops = scalar_opcodes(out)
        assert "fsub" in ops and "fabs" in ops


class TestPermutations:
    def test_load_fold_category7(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        shuffled = b.bfly(b.load("A"), 8, inplace=True)
        b.store("C", shuffled)
        out = scalarize_loop(b.build(), mvl=16)
        ops = scalar_opcodes(out)
        # offset load, index add, data load, store — one segment.
        assert ops == ["ldw", "add", "ldf", "stf"]
        assert len(out.segments) == 1
        bfly_arrays = [a for a in out.new_arrays if "bfly" in a.name]
        assert len(bfly_arrays) == 1
        assert bfly_arrays[0].values[:8] == [4, 4, 4, 4, -4, -4, -4, -4]

    def test_fresh_load_perm_prefers_load_fold(self):
        # A permutation of a just-loaded value folds into the load even if
        # written in two-register form.
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        rotated = b.rot(x, 4, 1)
        b.store("C", rotated)
        out = scalarize_loop(b.build(), mvl=16)
        assert len(out.segments) == 1
        assert scalar_opcodes(out) == ["ldw", "add", "ldf", "stf"]

    def test_store_fold_category8_uses_inverse(self):
        # Permutation of a *computed* value feeding only a store: category 8.
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        doubled = b.mul(x, b.imm(2.0))
        rotated = b.rot(doubled, 4, 1)
        b.store("C", rotated)
        out = scalarize_loop(b.build(), mvl=16)
        assert len(out.segments) == 1
        arrays = [a for a in out.new_arrays if "rot" in a.name]
        assert len(arrays) == 1
        # Store-side offsets are the *inverse* rotation (rot4 by 3).
        from repro.simd.permutations import PermPattern
        assert arrays[0].values[:4] == PermPattern("rot", 4, 3).offsets(4)

    def test_mid_loop_perm_fissions(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        doubled = b.mul(x, b.imm(2.0))
        swapped = b.bfly(doubled, 4)
        b.store("C", b.add(swapped, x))
        out = scalarize_loop(b.build(), mvl=16)
        assert len(out.segments) == 2
        tmp_arrays = [a for a in out.new_arrays if "tmp" in a.name]
        assert len(tmp_arrays) == 2  # permuted value + live x
        # Second segment starts by reloading both.
        seg2_ops = [i.opcode for i in out.segments[1]]
        assert seg2_ops[:2] == ["ldf", "ldf"]
        assert seg2_ops[-1] == "stf"

    def test_fission_spills_only_live_values(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        y = b.load("B")       # dead after the product
        prod = b.mul(x, y)
        swapped = b.bfly(prod, 4)
        b.store("C", b.add(swapped, swapped))  # perm feeds an op: fission
        out = scalarize_loop(b.build(), mvl=16)
        assert len(out.segments) == 2
        tmp_arrays = [a for a in out.new_arrays if "tmp" in a.name]
        assert len(tmp_arrays) == 1  # only the permuted value crosses the cut

    def test_two_perms_two_fissions(self):
        b = LoopBuilder("L", trip=16, elem="f32")
        x = b.load("A")
        s1 = b.bfly(b.mul(x, b.imm(2.0)), 4)
        s2 = b.rev(b.add(s1, s1), 4)
        b.store("C", b.add(s2, s2))
        out = scalarize_loop(b.build(), mvl=16)
        assert len(out.segments) == 3

    def test_offset_arrays_are_read_only_and_padded(self):
        b = LoopBuilder("L", trip=20, elem="f32")
        shuffled = b.bfly(b.load("A"), 4, inplace=True)
        b.store("C", shuffled)
        out = scalarize_loop(b.build(), mvl=16)
        arr = [a for a in out.new_arrays if "bfly" in a.name][0]
        assert arr.read_only
        assert len(arr) == 32  # 20 padded up to a multiple of 16


class TestValidation:
    def test_scalar_op_in_simd_body_rejected(self):
        loop = SimdLoop("L", trip=8, body=[
            Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Reg("r3"))),
        ])
        with pytest.raises(LoopIRError):
            loop.validate()

    def test_memory_base_must_be_symbol(self):
        loop = SimdLoop("L", trip=8, body=[
            Instruction("vld", dst=Reg("vf2"),
                        mem=Mem(base=Reg("r4"), index=Reg("r0")), elem="f32"),
        ])
        with pytest.raises(LoopIRError):
            loop.validate()

    def test_memory_index_must_be_induction(self):
        loop = SimdLoop("L", trip=8, body=[
            Instruction("vld", dst=Reg("vf2"),
                        mem=Mem(base=Sym("A"), index=Reg("r5")), elem="f32"),
        ])
        with pytest.raises(LoopIRError):
            loop.validate()

    def test_vimm_period_power_of_two(self):
        loop = SimdLoop("L", trip=8, body=[
            Instruction("vld", dst=Reg("vf2"),
                        mem=Mem(base=Sym("A"), index=Reg("r0")), elem="f32"),
            Instruction("vand", dst=Reg("vf3"),
                        srcs=(Reg("vf2"), VImm((1, 2, 3))), elem="f32"),
        ])
        with pytest.raises(LoopIRError):
            loop.validate()

    def test_trip_positive(self):
        loop = SimdLoop("L", trip=0, body=[])
        with pytest.raises(LoopIRError):
            loop.validate()

    def test_kernel_schedule_names_checked(self):
        b = LoopBuilder("hot", trip=8, elem="f32")
        x = b.load("A")
        b.store("A", x)
        from repro.isa.program import DataArray
        kernel = Kernel("k", arrays=[DataArray("A", "f32", [0.0] * 8)],
                        stages=[b.build()], schedule=["missing"])
        with pytest.raises(LoopIRError):
            kernel.validate()

    def test_kernel_unknown_array_checked(self):
        b = LoopBuilder("hot", trip=8, elem="f32")
        x = b.load("NOPE")
        b.store("NOPE", x)
        kernel = Kernel("k", arrays=[], stages=[b.build()], schedule=["hot"])
        with pytest.raises(LoopIRError):
            kernel.validate()

    def test_scalar_block_rejects_vector_and_calls(self):
        block = ScalarBlock("b", body=[
            Instruction("vadd", dst=Reg("v1"), srcs=(Reg("v2"), Reg("v3")),
                        elem="i32"),
        ])
        with pytest.raises(LoopIRError):
            block.validate()
        block2 = ScalarBlock("b", body=[Instruction("bl", target="x")])
        with pytest.raises(LoopIRError):
            block2.validate()

    def test_scalar_block_branch_targets_local(self):
        block = ScalarBlock("b", body=[Instruction("b", target="far")],
                            labels={})
        with pytest.raises(LoopIRError):
            block.validate()

    def test_kernel_repeats_positive(self):
        kernel = Kernel("k", arrays=[], stages=[], schedule=[], repeats=0)
        with pytest.raises(LoopIRError):
            kernel.validate()
