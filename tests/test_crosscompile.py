"""Tests for the post-compilation cross-compiler."""

import pytest

from repro.core.scalarize.crosscompile import (
    LoopRegion,
    cross_compile,
    find_candidate_loops,
    outline_loops,
)
from repro.isa.assembler import assemble
from repro.simd.accelerator import config_for_width
from repro.system import Machine, MachineConfig, arrays_equal


LEGACY = """
.data x f32 64 = 0.5
.data h f32 64 = 0.25
.data y f32 64 = 0.0
.data z i16 32 = 3
.data acc f32 1 = 0.0
main:
    fmov f1, #0.0
    mov r0, #0
loop1:
    ldf f2, [x + r0]
    ldf f3, [h + r0]
    fmul f4, f2, f3
    stf f4, [y + r0]
    fadd f1, f1, f4
    add r0, r0, #1
    cmp r0, #64
    blt loop1
    stf f1, [acc + #0]
    mov r0, #0
loop2:
    ldh r2, [z + r0]
    mul r3, r2, r2
    sth r3, [z + r0]
    add r0, r0, #1
    cmp r0, #32
    blt loop2
    halt
"""


def _run(program, width=None):
    accel = config_for_width(width) if width else None
    return Machine(MachineConfig(accelerator=accel)).run(program)


class TestLoopFinder:
    def test_finds_both_loops(self):
        program = assemble(LEGACY, name="legacy")
        regions = find_candidate_loops(program)
        assert len(regions) == 2
        assert regions[0].trip == 64 and regions[0].induction == "r0"
        assert regions[1].trip == 32
        assert regions[0].length == 9

    def test_rejects_register_trip_bound(self):
        src = """
        .data A i32 16 = 1
        main:
            mov r5, #16
            mov r0, #0
        L:
            ldw r2, [A + r0]
            stw r2, [A + r0]
            add r0, r0, #1
            cmp r0, r5
            blt L
            halt
        """
        assert find_candidate_loops(assemble(src)) == []

    def test_rejects_inner_branches(self):
        src = """
        .data A i32 16 = 1
        main:
            mov r0, #0
        L:
            ldw r2, [A + r0]
            cmp r2, #0
            bgt skip
            stw r2, [A + r0]
        skip:
            add r0, r0, #1
            cmp r0, #16
            blt L
            halt
        """
        assert find_candidate_loops(assemble(src)) == []

    def test_rejects_register_base_addressing(self):
        src = """
        main:
            mov r4, #4096
            mov r0, #0
        L:
            ldw r2, [r4 + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            halt
        """
        assert find_candidate_loops(assemble(src)) == []

    def test_rejects_calls_in_body(self):
        src = """
        main:
            mov r0, #0
        L:
            bl helper
            add r0, r0, #1
            cmp r0, #16
            blt L
            halt
        helper:
            ret
        """
        assert find_candidate_loops(assemble(src)) == []


class TestOutlining:
    def test_outlined_program_structure(self):
        program = assemble(LEGACY, name="legacy")
        liquid = cross_compile(program)
        assert liquid.outlined_functions == ["xloop0_fn", "xloop1_fn"]
        blos = [i for i in liquid.instructions if i.opcode == "blo"]
        assert len(blos) == 2
        # Bodies end in ret.
        for fn in liquid.outlined_functions:
            assert liquid.function_body(fn)[-1].opcode == "ret"

    def test_scalar_semantics_preserved(self):
        program = assemble(LEGACY, name="legacy")
        liquid = cross_compile(program)
        base = _run(program)
        scalar_liquid = _run(liquid)  # no accelerator: plain execution
        assert arrays_equal(base, scalar_liquid)

    def test_translated_execution_matches(self):
        program = assemble(LEGACY, name="legacy")
        liquid = cross_compile(program)
        base = _run(program)
        for width in (4, 8, 16):
            translated = _run(liquid, width=width)
            assert arrays_equal(base, translated), width
            assert translated.successful_translations == 2

    def test_overlapping_regions_rejected(self):
        program = assemble(LEGACY, name="legacy")
        with pytest.raises(ValueError):
            outline_loops(program, [
                LoopRegion(start=1, end=9, induction="r0", trip=64),
                LoopRegion(start=5, end=12, induction="r0", trip=64),
            ])

    def test_invalid_mark_opcode(self):
        program = assemble(LEGACY, name="legacy")
        with pytest.raises(ValueError):
            outline_loops(program, mark_opcode="b")

    def test_plain_bl_mode(self):
        program = assemble(LEGACY, name="legacy")
        liquid = cross_compile(program, mark_opcode="bl")
        base = _run(program)
        machine = Machine(MachineConfig(accelerator=config_for_width(8),
                                        attempt_plain_bl=True))
        translated = machine.run(liquid)
        assert arrays_equal(base, translated)
        assert translated.successful_translations == 2

    def test_untranslatable_candidate_is_safe(self):
        # fdiv passes the lenient static screen's FALU-adjacent classes?
        # No: FDIV is excluded -- but min/max pseudo-ops are in ALU and a
        # weird usage can still reach the runtime checker.  Use a loop
        # whose body stores a loop-invariant scalar: statically clean,
        # dynamically illegal (rule 4 needs vector data).
        src = """
        .data A i32 16 = 0
        main:
            mov r5, #7
            mov r0, #0
        L:
            stw r5, [A + r0]
            add r0, r0, #1
            cmp r0, #16
            blt L
            halt
        """
        program = assemble(src)
        liquid = cross_compile(program)
        assert liquid.outlined_functions  # the screen let it through
        base = _run(program)
        translated = _run(liquid, width=8)
        # The runtime legality checker aborted it; results still match.
        assert translated.successful_translations == 0
        assert arrays_equal(base, translated)
