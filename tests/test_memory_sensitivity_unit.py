"""Unit-level checks for the memory-sensitivity experiment (E11)."""

from repro.evaluation.experiments import memory_sensitivity


def test_rows_shape():
    rows = memory_sensitivity(("FIR",), width=4, miss_penalties=(0, 30))
    assert len(rows) == 1
    row = rows[0]
    assert row["benchmark"] == "FIR"
    assert set(row["speedups"]) == {0, 30}
    assert all(v > 1.0 for v in row["speedups"].values())


def test_ideal_memory_never_hurts_speedup_much():
    rows = memory_sensitivity(("FIR",), width=4, miss_penalties=(0, 100))
    speedups = rows[0]["speedups"]
    # Both binaries benefit from ideal memory; the ratio moves only via
    # the miss-prone fraction, never catastrophically.
    assert speedups[0] > speedups[100] * 0.8
