"""Tests for the tracer, run summaries, and ASCII figure rendering."""

import pytest

from repro.core.scalarize import build_liquid_program
from repro.evaluation.figures import render_figure6_chart, render_sweep_chart
from repro.simd.accelerator import config_for_width
from repro.system import Machine, MachineConfig, TraceRecorder

from conftest import run_program, simple_kernel


def traced_run(tracer, calls=3, width=8):
    program = build_liquid_program(simple_kernel(calls=calls))
    machine = Machine(MachineConfig(accelerator=config_for_width(width)),
                      tracer=tracer)
    return machine.run(program)


class TestTraceRecorder:
    def test_captures_both_streams(self):
        tracer = TraceRecorder(limit=10_000)
        traced_run(tracer)
        sources = {rec.source for rec in tracer.records}
        assert sources == {"scalar", "ucode"}

    def test_opcode_filter(self):
        tracer = TraceRecorder(limit=1000, opcodes={"blo"})
        traced_run(tracer, calls=4)
        assert len(tracer) == 4
        assert all("blo" in rec.text for rec in tracer.records)

    def test_pc_range_filter(self):
        tracer = TraceRecorder(limit=1000, pc_range=(0, 2))
        traced_run(tracer)
        assert all(rec.pc < 2 for rec in tracer.records)

    def test_ring_buffer_rotation(self):
        tracer = TraceRecorder(limit=5)
        traced_run(tracer)
        assert len(tracer) == 5
        assert tracer.dropped > 0
        # The newest records survive.
        indexes = [rec.index for rec in tracer.records]
        assert indexes == sorted(indexes)

    def test_render_marks_microcode(self):
        tracer = TraceRecorder(limit=50, opcodes={"vld"})
        traced_run(tracer)
        text = tracer.render()
        assert " U " in text
        assert "vld" in text

    def test_histogram(self):
        tracer = TraceRecorder(limit=10_000)
        traced_run(tracer)
        hist = tracer.opcode_histogram()
        assert hist["blo"] == 3
        assert "vld" in hist and "ldf" in hist

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(limit=0)

    def test_tracing_does_not_change_timing(self):
        program = build_liquid_program(simple_kernel(calls=3))
        plain = Machine(MachineConfig(
            accelerator=config_for_width(8))).run(program)
        tracer = TraceRecorder(limit=10)
        traced = Machine(MachineConfig(accelerator=config_for_width(8)),
                         tracer=tracer).run(program)
        assert plain.cycles == traced.cycles


class TestRunSummary:
    def test_summary_contains_key_sections(self):
        result = run_program(build_liquid_program(simple_kernel(calls=4)),
                             width=8)
        text = result.summary()
        assert "cycles" in text and "CPI" in text
        assert "hot_fn" in text and "translated" in text
        assert "microcode cache" in text

    def test_summary_reports_aborts(self):
        from conftest import perm_kernel
        result = run_program(build_liquid_program(perm_kernel(period=8)),
                             width=4)
        assert "aborted (unsupported-permutation)" in result.summary()

    def test_cpi_positive(self):
        result = run_program(build_liquid_program(simple_kernel(calls=2)),
                             width=8)
        assert result.cpi > 0.5


class TestFigureRendering:
    ROWS = [
        {"benchmark": "FIR", "speedups": {2: 2.0, 8: 5.2}},
        {"benchmark": "179.art", "speedups": {2: 1.1, 8: 1.3}},
    ]

    def test_figure6_chart(self):
        text = render_figure6_chart(self.ROWS, (2, 8))
        assert "FIR" in text and "179.art" in text
        assert "5.20" in text
        assert "legend" in text

    def test_bars_scale_with_value(self):
        text = render_figure6_chart(self.ROWS, (2, 8))
        fir_lines = [line for line in text.splitlines() if "w=8" in line]
        # FIR's w=8 bar is the longest.
        assert max(fir_lines, key=len).endswith("5.20")

    def test_sweep_chart(self):
        rows = [{"entries": 1, "cycles": 100}, {"entries": 8, "cycles": 50}]
        text = render_sweep_chart(rows, "entries", "cycles", "sweep")
        assert "sweep" in text
        assert "100.00" in text

    def test_empty_speedups_rejected(self):
        with pytest.raises(ValueError):
            render_figure6_chart(
                [{"benchmark": "x", "speedups": {2: 0.0}}], (2,))
