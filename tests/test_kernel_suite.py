"""Tests for the fifteen benchmark kernels and their structural properties."""

import pytest

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, BENCHMARKS, all_kernels, build_kernel
from repro.system.metrics import arrays_equal, outlined_function_sizes

from conftest import run_program

#: Benchmarks cheap enough to simulate inside the unit-test suite.
FAST = ["MPEG2 Dec.", "MPEG2 Enc.", "GSM Dec.", "GSM Enc.", "FFT", "LU"]


class TestRegistry:
    def test_all_fifteen_present(self):
        assert len(BENCHMARK_ORDER) == 15
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)

    def test_paper_names(self):
        for expected in ("171.swim", "179.art", "MPEG2 Dec.", "GSM Enc.",
                         "FIR", "FFT", "LU"):
            assert expected in BENCHMARKS

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("197.parser")

    def test_all_kernels_validate(self):
        kernels = all_kernels()
        assert len(kernels) == 15
        for kernel in kernels:
            assert kernel.simd_loops, f"{kernel.name} has no hot loops"
            assert kernel.schedule
            assert kernel.repeats >= 2  # hot loops must be called repeatedly

    def test_kernels_are_freshly_built(self):
        a = build_kernel("FIR")
        b = build_kernel("FIR")
        assert a is not b
        a.arrays[0].values[0] = 999.0
        assert b.arrays[0].values[0] != 999.0


class TestStructuralProperties:
    def test_outlined_functions_fit_microcode_buffer(self):
        """Every hot loop must fit the 64-instruction buffer (Table 5)."""
        for name in BENCHMARK_ORDER:
            liquid = build_liquid_program(build_kernel(name))
            for fn, size in outlined_function_sizes(liquid).items():
                assert size <= 64, f"{name}/{fn} = {size} instructions"

    def test_every_benchmark_has_multiple_hot_loop_calls(self):
        for name in BENCHMARK_ORDER:
            kernel = build_kernel(name)
            loops = {s.name for s in kernel.simd_loops}
            per_pattern = sum(kernel.schedule.count(n) for n in loops)
            assert per_pattern * kernel.repeats >= 2

    def test_mpeg2_decode_uses_8_element_rows(self):
        kernel = build_kernel("MPEG2 Dec.")
        assert all(loop.trip == 8 for loop in kernel.simd_loops)

    def test_art_arrays_exceed_data_cache(self):
        kernel = build_kernel("179.art")
        total = sum(a.size_bytes for a in kernel.arrays)
        assert total > 16 * 1024  # cache-hostile by design

    def test_fft_scalarizes_into_two_loops(self):
        from repro.core.scalarize import scalarize_loop
        kernel = build_kernel("FFT")
        stage = kernel.stage("fft_stage")
        scalarized = scalarize_loop(stage, mvl=16)
        assert len(scalarized.segments) == 2  # the paper's fissioned pair
        names = {a.name for a in scalarized.new_arrays}
        assert any("bfly" in n for n in names)
        assert any("mask" in n for n in names)
        assert any("tmp" in n for n in names)


@pytest.mark.parametrize("name", FAST)
class TestFastBenchmarksEndToEnd:
    def test_liquid_matches_baseline_w8(self, name):
        kernel = build_kernel(name)
        r_base = run_program(build_baseline_program(kernel))
        r_liquid = run_program(build_liquid_program(kernel), width=8)
        assert arrays_equal(r_base, r_liquid)
        assert r_liquid.cycles < r_base.cycles

    def test_all_hot_loops_translate_at_w8(self, name):
        kernel = build_kernel(name)
        result = run_program(build_liquid_program(kernel), width=8)
        failed = [t for t in result.translations if not t.ok]
        assert not failed, [(t.function, t.reason) for t in failed]


class TestPaperShapeInvariants:
    def test_mpeg2_decode_saturates_at_width_8(self):
        kernel = build_kernel("MPEG2 Dec.")
        liquid = build_liquid_program(kernel)
        w8 = run_program(liquid, width=8)
        w16 = run_program(liquid, width=16)
        # Widening past the 8-element rows buys (almost) nothing.
        assert abs(w16.cycles - w8.cycles) / w8.cycles < 0.02
        for t in w16.translations:
            assert t.entry.width == 8

    def test_gsm_frames_cap_effective_width_at_32(self):
        kernel = build_kernel("GSM Dec.")  # trip 160 = 32 * 5
        result = run_program(build_liquid_program(kernel), width=16)
        for t in result.translations:
            assert t.ok and t.entry.width == 16
