"""Property tests: ``Cache.access_stream`` vs. the sequential loop.

``memory/cache.py`` grew a batched entry point for the macro-kernel
layer: :meth:`Cache.access_stream` must return exactly the latencies the
per-access :meth:`Cache.access` loop would, and leave the cache in
exactly the state the loop would — same statistics, same generation
tick, same LRU-ordered residency per set (which pins future victim
choices), same dirty bits.  The fast path only handles eviction-free
streams and falls back to the sequential replay otherwise, so this
suite drives both a geometry that *forces* the fallback (tiny
associativity under address pressure) and one where the vectorized path
always applies (the shipped 64-way geometry over a compact footprint),
plus directed edge cases: empty streams, line-straddling accesses, and
warm-cache residency.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def _drive_pair(config: CacheConfig, warmup, stream) -> None:
    """Warm two caches identically, then batch vs. loop the stream."""
    seq = Cache(config)
    vec = Cache(config)
    for addr, nbytes, is_write in warmup:
        assert seq.access(addr, nbytes, is_write) == \
            vec.access(addr, nbytes, is_write)
    expected = [seq.access(a, n, w) for a, n, w in stream]
    got = vec.access_stream([a for a, _, _ in stream],
                            [n for _, n, _ in stream],
                            [w for _, _, w in stream])
    assert got.tolist() == expected
    assert vec.stats.to_dict() == seq.stats.to_dict()
    # The generation tick and per-set stamp *ordering* must match too:
    # they decide every future eviction, so equality here means the two
    # caches stay interchangeable for the rest of a run.
    assert vec._tick == seq._tick
    for set_index in range(config.num_sets):
        assert vec.resident(set_index) == seq.resident(set_index), \
            f"set {set_index} residency diverged"
        assert vec._dirty[set_index] == seq._dirty[set_index], \
            f"set {set_index} dirty bits diverged"


def _random_stream(rng: random.Random, config: CacheConfig, length: int,
                   span: int):
    stream = []
    for _ in range(length):
        addr = rng.randrange(span)
        nbytes = rng.choice((1, 2, 4, 8, config.line_bytes,
                             config.line_bytes * 2))
        stream.append((addr, nbytes, rng.random() < 0.4))
    return stream


TINY_GEOMETRIES = st.tuples(
    st.sampled_from((1, 2)),              # assoc: evictions guaranteed
    st.sampled_from((16, 32)),            # line_bytes
    st.sampled_from((2, 4, 8)),           # num_sets
)


@given(geometry=TINY_GEOMETRIES, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_stream_matches_loop_with_evictions(geometry, seed):
    """Address pressure on tiny sets: the eviction fallback path."""
    assoc, line_bytes, num_sets = geometry
    config = CacheConfig(size_bytes=assoc * line_bytes * num_sets,
                         assoc=assoc, line_bytes=line_bytes,
                         hit_latency=1, miss_penalty=30)
    rng = random.Random(seed)
    span = config.size_bytes * 3
    warmup = _random_stream(rng, config, 40, span)
    stream = _random_stream(rng, config, 120, span)
    _drive_pair(config, warmup, stream)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_stream_matches_loop_eviction_free(seed):
    """The shipped 64-way geometry over a footprint it can fully hold:
    per-set occupancy never exceeds the associativity, so the batched
    call resolves on the vectorized fast path."""
    config = CacheConfig()  # 16 KB, 64-way, 32 B lines
    rng = random.Random(seed)
    span = config.size_bytes // 2  # fits: at most num_sets*assoc lines
    warmup = _random_stream(rng, config, 60, span)
    stream = _random_stream(rng, config, 200, span)
    _drive_pair(config, warmup, stream)


def test_empty_stream_is_a_no_op():
    cache = Cache(CacheConfig())
    out = cache.access_stream([], [], [])
    assert out.shape == (0,)
    assert cache.stats.accesses == 0
    assert cache._tick == 0


def test_straddling_access_charges_per_line():
    """A 64-byte access over 32-byte lines costs two line accesses, and
    the batched per-access latency is their sum — same as access()."""
    config = CacheConfig(size_bytes=4 * 1024, assoc=4, line_bytes=32,
                         hit_latency=1, miss_penalty=30)
    _drive_pair(config, [], [(16, 64, False), (16, 64, False),
                             (40, 8, True)])


def test_fast_path_taken_when_eviction_free():
    """Directed: on a warm eviction-free stream the vectorized path must
    answer without ever replaying single-line accesses."""
    config = CacheConfig(size_bytes=1024, assoc=8, line_bytes=32)
    cache = Cache(config)
    stream = [(i * 4, 4, i % 3 == 0) for i in range(64)]
    for addr, nbytes, is_write in stream:
        cache.access(addr, nbytes, is_write)

    def boom(line_number, is_write):  # pragma: no cover - fails the test
        raise AssertionError("fast path should not replay per line")

    cache._access_line_number = boom
    lat = cache.access_stream([a for a, _, _ in stream],
                              [n for _, n, _ in stream],
                              [w for _, _, w in stream])
    # Everything is resident after the warmup loop: all hits.
    assert lat.tolist() == [config.hit_latency] * len(stream)
