"""Smoke tests for the command-line interfaces."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main as repro_main
from repro.evaluation.cli import run as eval_cli


def _capture(fn, *args):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = fn(*args)
    return code, buffer.getvalue()


class TestReproMain:
    def test_list(self):
        code, out = _capture(repro_main, ["list"])
        assert code == 0
        assert "179.art" in out and "hot loops" in out

    def test_run_single_benchmark(self):
        code, out = _capture(repro_main, ["run", "LU", "--widths", "8"])
        assert code == 0
        assert "baseline" in out and "match" in out
        assert "DIVERGED" not in out

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "not-a-benchmark"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            repro_main([])


class TestEvaluationCli:
    def test_table2_only(self):
        code, out = _capture(eval_cli, ["--experiments", "table2"])
        assert code == 0
        assert "174,117" in out

    def test_subset_table5(self):
        code, out = _capture(
            eval_cli, ["--benchmarks", "LU", "--experiments", "table5"])
        assert code == 0
        assert "LU" in out and "Mean" in out

    def test_evaluate_subcommand_delegates(self):
        code, out = _capture(repro_main,
                             ["evaluate", "--experiments", "table2"])
        assert code == 0
        assert "174,117" in out
