"""Smoke tests for the command-line interfaces."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main as repro_main
from repro.evaluation.cli import run as eval_cli


def _capture(fn, *args):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = fn(*args)
    return code, buffer.getvalue()


class TestReproMain:
    def test_list(self):
        code, out = _capture(repro_main, ["list"])
        assert code == 0
        assert "179.art" in out and "hot loops" in out

    def test_run_single_benchmark(self):
        code, out = _capture(repro_main, ["run", "LU", "--widths", "8"])
        assert code == 0
        assert "baseline" in out and "match" in out
        assert "DIVERGED" not in out

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "not-a-benchmark"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            repro_main([])


class TestEvaluationCli:
    def test_table2_only(self):
        code, out = _capture(eval_cli, ["--experiments", "table2"])
        assert code == 0
        assert "174,117" in out

    def test_subset_table5(self):
        code, out = _capture(
            eval_cli, ["--benchmarks", "LU", "--experiments", "table5"])
        assert code == 0
        assert "LU" in out and "Mean" in out

    def test_evaluate_subcommand_delegates(self):
        code, out = _capture(repro_main,
                             ["evaluate", "--experiments", "table2"])
        assert code == 0
        assert "174,117" in out

    def test_rejects_unknown_benchmark_with_choices(self, capsys):
        with pytest.raises(SystemExit):
            eval_cli(["--benchmarks", "LU", "BOGUS",
                      "--experiments", "table5"])
        err = capsys.readouterr().err
        assert "'BOGUS'" in err
        assert "Valid choices:" in err and "179.art" in err

    def test_rejects_unknown_ucache_benchmark(self, capsys):
        with pytest.raises(SystemExit):
            eval_cli(["--experiments", "ucache",
                      "--ucache-benchmark", "nope"])
        assert "--ucache-benchmark" in capsys.readouterr().err

    def test_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit):
            eval_cli(["--experiments", "table2", "--jobs", "0"])
        assert "--jobs" in capsys.readouterr().err

    def test_ucache_benchmark_flag_selects_benchmark(self):
        code, out = _capture(
            eval_cli, ["--benchmarks", "FIR", "--experiments", "ucache",
                       "--ucache-benchmark", "FIR", "--no-cache"])
        assert code == 0
        assert "Microcode cache entries sweep (FIR)" in out

    def test_cache_flow_cold_then_warm(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["--benchmarks", "LU", "--experiments", "table5", "table6",
                "--cache-dir", cache_dir, "--jobs", "1"]
        code, cold = _capture(eval_cli, argv)
        assert code == 0
        assert "cache: 0 hits / 1 simulated" in cold
        code, warm = _capture(eval_cli, argv)
        assert code == 0
        assert "cache: 1 hits / 0 simulated" in warm
        # Identical rendered output whatever the cache state (strip the
        # trailing timing/stats line, which reports hits vs simulated).
        strip = lambda out: out.splitlines()[:-1]
        assert strip(cold) == strip(warm)

    def test_no_cache_flag_disables_reporting(self):
        code, out = _capture(eval_cli, ["--benchmarks", "LU",
                                        "--experiments", "table5",
                                        "--no-cache"])
        assert code == 0
        assert "cache:" not in out


class TestCacheSubcommand:
    def test_info_and_clear(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = _capture(eval_cli, ["--benchmarks", "LU",
                                      "--experiments", "table6",
                                      "--cache-dir", cache_dir])
        assert code == 0
        code, out = _capture(repro_main,
                             ["cache", "info", "--cache-dir", cache_dir])
        assert code == 0
        assert "entries   1" in out
        code, out = _capture(repro_main,
                             ["cache", "clear", "--cache-dir", cache_dir])
        assert code == 0
        assert "cleared 1 cached run" in out
        code, out = _capture(repro_main,
                             ["cache", "info", "--cache-dir", cache_dir])
        assert code == 0
        assert "entries   0" in out

    def test_info_reports_local_backend(self, tmp_path):
        code, out = _capture(
            repro_main, ["cache", "info", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "backend: local directory" in out
        assert "fragment store" in out

    def test_info_reports_reachable_daemon(self, tmp_path):
        from repro.evaluation.cacheserver import CacheServer
        server = CacheServer(tmp_path / "served", port=0).start()
        try:
            code, out = _capture(
                repro_main, ["cache", "info", "--cache-url", server.url])
        finally:
            server.shutdown()
        assert code == 0
        assert "backend: http" in out
        assert "status    reachable" in out
        # No local directory behind a URL, so no fragment-store section.
        assert "fragment store" not in out

    def test_info_unreachable_daemon_exits_nonzero(self):
        code, out = _capture(
            repro_main,
            ["cache", "info", "--cache-url", "http://127.0.0.1:9"])
        assert code == 1
        assert "status    unreachable" in out


class TestSweepSubcommand:
    ARGS = ["sweep", "--benchmarks", "FIR", "--widths", "2",
            "--jobs", "1"]

    def test_sweep_smoke(self, tmp_path):
        code, out = _capture(
            repro_main, self.ARGS + ["--cache-dir", str(tmp_path)])
        assert code == 0
        assert "simulated 2, warm 0" in out
        assert "speedups: 1 records" in out

    def test_incremental_after_cold_sweep(self, tmp_path):
        cache = ["--cache-dir", str(tmp_path)]
        _capture(repro_main, self.ARGS + cache)
        code, out = _capture(
            repro_main, self.ARGS + cache + ["--incremental"])
        assert code == 0
        assert "incremental: simulated 0, warm 2" in out
        assert "probe round-trips 1" in out

    def test_shard_merge_roundtrip(self, tmp_path):
        import json
        cache = ["--cache-dir", str(tmp_path / "cache")]
        paths = []
        for i in (1, 2):
            out_path = tmp_path / f"shard{i}.json"
            code, _ = _capture(
                repro_main, self.ARGS + cache
                + ["--shard", f"{i}/2", "--out", str(out_path)])
            assert code == 0
            paths.append(str(out_path))
        merged_path = tmp_path / "merged.json"
        code, out = _capture(
            repro_main, ["sweep", "--merge", *paths,
                         "--out", str(merged_path)])
        assert code == 0
        assert "merged 2 shard manifest(s)" in out
        merged = json.loads(merged_path.read_text())
        assert merged["stats"]["machine_runs"] == 2

    def test_merge_rejects_incomplete_fleet(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        out_path = tmp_path / "shard1.json"
        code, _ = _capture(
            repro_main, self.ARGS + cache
            + ["--shard", "1/2", "--out", str(out_path)])
        assert code == 0
        code = repro_main(["sweep", "--merge", str(out_path)])
        assert code == 1
        assert "cover" in capsys.readouterr().err

    def test_bad_shard_spec_exits_nonzero(self, capsys):
        code = repro_main(["sweep", "--shard", "nope"])
        assert code == 1
        assert "K/N" in capsys.readouterr().err

    def test_json_output_is_a_manifest(self):
        import json
        code, out = _capture(repro_main, self.ARGS + ["--json"])
        assert code == 0
        manifest = json.loads(out)
        assert manifest["kind"] == "repro-sweep"
        assert manifest["coverage"]["selected"] == 2
