"""Translator regression under the fast engine.

The dynamic translator consumes the retire-event stream; the fast engine
produces the same stream as the reference interpreter, so translation
outcomes must be indistinguishable: byte-identical microcode fragments
(via :func:`repro.isa.encoding.encode_program`) for successful
translations and identical :class:`AbortReason`s for abandoned ones.
The paper's outlined FFT example (the ``examples/fft_paper_example.py``
flow, section 3.4) is the primary fixture because it exercises the full
observation pipeline: masks, shuffled offset loads, loop fission, and
permutation recognition.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.scalarize import build_liquid_program
from repro.core.translate.translator import AbortReason
from repro.isa.encoding import encode_program
from repro.kernels.suite import build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig


def _translations(program, **config_kwargs):
    config = MachineConfig(**config_kwargs)
    return Machine(config).run(program).translations


def _compare_streams(program, **config_kwargs):
    fast = _translations(program, engine="fast", **config_kwargs)
    ref = _translations(program, engine="reference", **config_kwargs)
    assert len(fast) == len(ref)
    for f, r in zip(fast, ref):
        assert f.function == r.function
        assert f.ok == r.ok
        assert f.reason == r.reason
        if f.ok:
            assert f.entry.width == r.entry.width
            assert encode_program(f.entry.fragment) == \
                encode_program(r.entry.fragment)
    return fast


@pytest.fixture(scope="module")
def fft_program():
    return build_liquid_program(build_kernel("FFT"))


def test_fft_microcode_byte_identical(fft_program):
    """The paper's worked example translates to identical microcode."""
    translations = _compare_streams(
        fft_program, accelerator=config_for_width(8))
    fft = [t for t in translations if t.function == "fft_stage_fn"]
    assert fft and fft[0].ok, "FFT stage must translate successfully"


def test_fft_abort_reasons_identical_without_permutations(fft_program):
    """Remove the permutation repertoire: both engines abort identically."""
    accel = dataclasses.replace(config_for_width(8), permutations=())
    translations = _compare_streams(fft_program, accelerator=accel)
    fft = [t for t in translations if t.function == "fft_stage_fn"]
    assert fft and not fft[0].ok
    assert fft[0].reason is AbortReason.UNSUPPORTED_PATTERN


def test_fft_abort_reasons_identical_with_tiny_buffer(fft_program):
    """A 2-entry microcode buffer overflows identically on both engines."""
    translations = _compare_streams(
        fft_program, accelerator=config_for_width(8),
        max_ucode_instructions=2)
    assert translations and all(not t.ok for t in translations)
    assert {t.reason for t in translations} == {AbortReason.BUFFER_OVERFLOW}


def test_decode_observation_point_identical(fft_program):
    """Decode-tap translation (no observed values) matches across engines."""
    _compare_streams(fft_program, accelerator=config_for_width(8),
                     observation_point="decode")


@pytest.mark.parametrize("bench", ["MPEG2 Dec.", "GSM Enc.", "LU", "FIR"])
def test_other_benchmarks_translate_identically(bench):
    program = build_liquid_program(build_kernel(bench))
    _compare_streams(program, accelerator=config_for_width(8))
