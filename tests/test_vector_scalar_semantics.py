"""Exhaustive cross-checks: every vector op vs. its scalar twin.

The correctness of the whole system reduces to one contract: for every
vector opcode, every element type, and every lane value, the lane result
equals what the corresponding scalar-representation instruction computes
on that element.  This module enumerates that contract directly, using
edge-heavy lane vectors (bounds, zeros, sign flips).
"""

import pytest

from repro import arith
from repro.simd.vector_ops import (
    SCALAR_TO_VECTOR,
    vector_binary,
    vector_reduce,
    vector_unary,
)

_INT_EDGES = {
    "i8": [0, 1, -1, 127, -128, 64, -64, 100],
    "i16": [0, 1, -1, 32767, -32768, 12345, -12345, 255],
    "i32": [0, 1, -1, (1 << 31) - 1, -(1 << 31), 65536, -65536, 7],
}
_F32_EDGES = [0.0, 1.0, -1.0, 0.5, -2.25, 1e10, -1e-10, 3.0]

_INT_OPS = {
    "vadd": "add", "vsub": "sub", "vmul": "mul",
    "vand": "and", "vorr": "orr", "veor": "eor", "vbic": "bic",
    "vmin": "min", "vmax": "max",
    "vqadd": "qadd", "vqsub": "qsub",
}
_F32_OPS = {
    "vadd": "fadd", "vsub": "fsub", "vmul": "fmul",
    "vmin": "fmin", "vmax": "fmax",
}


@pytest.mark.parametrize("elem", ["i8", "i16", "i32"])
@pytest.mark.parametrize("vop,sop", sorted(_INT_OPS.items()))
def test_integer_lanes_match_scalar_op(vop, sop, elem):
    a = _INT_EDGES[elem]
    b = list(reversed(a))
    lanes = vector_binary(vop, a, b, elem)
    for x, y, lane in zip(a, b, lanes):
        assert lane == arith.int_op(sop, x, y, elem), (vop, x, y)


@pytest.mark.parametrize("vop,sop", sorted(_F32_OPS.items()))
def test_float_lanes_match_scalar_op(vop, sop):
    a = _F32_EDGES
    b = list(reversed(a))
    lanes = vector_binary(vop, a, b, "f32")
    for x, y, lane in zip(a, b, lanes):
        assert lane == arith.float_op(sop, x, y), (vop, x, y)


@pytest.mark.parametrize("elem", ["i8", "i16", "i32"])
@pytest.mark.parametrize("shift", [0, 1, 3, 7])
def test_shift_lanes_match_scalar(elem, shift):
    a = _INT_EDGES[elem]
    assert vector_binary("vshl", a, shift, elem) == \
        [arith.int_op("lsl", x, shift, elem) for x in a]
    assert vector_binary("vshr", a, shift, elem) == \
        [arith.int_op("asr", x, shift, elem) for x in a]


@pytest.mark.parametrize("elem", ["i8", "i16", "i32"])
def test_abd_is_absolute_difference(elem):
    a = _INT_EDGES[elem]
    b = list(reversed(a))
    lanes = vector_binary("vabd", a, b, elem)
    for x, y, lane in zip(a, b, lanes):
        assert lane == arith.wrap_int(abs(int(x) - int(y)), elem)


@pytest.mark.parametrize("elem", ["i8", "i16", "i32"])
def test_unary_lanes(elem):
    a = _INT_EDGES[elem]
    assert vector_unary("vneg", a, elem) == \
        [arith.wrap_int(-x, elem) for x in a]
    assert vector_unary("vabs", a, elem) == \
        [arith.wrap_int(abs(x), elem) for x in a]


def test_float_unary_lanes():
    a = _F32_EDGES
    assert vector_unary("vneg", a, "f32") == \
        [arith.float_op("fneg", x) for x in a]
    assert vector_unary("vabs", a, "f32") == \
        [arith.float_op("fabs", x) for x in a]


@pytest.mark.parametrize("red,sop", [("vredsum", "add"), ("vredmin", "min"),
                                     ("vredmax", "max")])
@pytest.mark.parametrize("elem", ["i16", "i32"])
def test_integer_reductions_fold_in_lane_order(red, sop, elem):
    lanes = _INT_EDGES[elem]
    acc = 5
    expected = acc
    for lane in lanes:
        expected = arith.int_op(sop, expected, lane, "i32")
    assert vector_reduce(red, acc, lanes, elem) == expected


@pytest.mark.parametrize("red,sop", [("vredsum", "fadd"), ("vredmin", "fmin"),
                                     ("vredmax", "fmax")])
def test_float_reductions_fold_in_lane_order(red, sop):
    lanes = _F32_EDGES
    acc = 0.25
    expected = acc
    for lane in lanes:
        expected = arith.float_op(sop, expected, lane)
    assert vector_reduce(red, acc, lanes, "f32") == expected


def test_translator_map_targets_real_semantics():
    """Every SCALAR_TO_VECTOR target must have lane semantics."""
    for scalar_op, vector_op in SCALAR_TO_VECTOR.items():
        if vector_op in ("vneg", "vabs"):
            vector_unary(vector_op, [1.0, -1.0] if scalar_op.startswith("f")
                         else [1, -1],
                         "f32" if scalar_op.startswith("f") else "i32")
        elif scalar_op.startswith("f") or scalar_op in ("fand", "forr"):
            vector_binary(vector_op, [1.0, 2.0], [0.5, 0.5], "f32")
        else:
            vector_binary(vector_op, [1, 2], [3, 4], "i32")


@pytest.mark.parametrize("elem", ["i8", "i16"])
def test_saturating_ops_match_idiom_shape(elem):
    """vqadd lanes equal the scalar clamp idiom's result on every edge."""
    lo, hi = arith.INT_BOUNDS[elem]
    a = _INT_EDGES[elem]
    b = _INT_EDGES[elem][::-1]
    lanes = vector_binary("vqadd", a, b, elem)
    for x, y, lane in zip(a, b, lanes):
        # The idiom computes the exact 32-bit sum, then clamps.
        s = arith.wrap_int(int(x) + int(y), "i32")
        idiom = max(lo, min(hi, s))
        assert lane == idiom
