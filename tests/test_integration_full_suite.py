"""Slow integration tests: every benchmark, cross-binary equivalence.

Marked ``slow``; run with ``pytest -m slow`` (or plain ``pytest``, they
are included by default) — each case simulates one full benchmark.
The cheaper per-benchmark checks live in test_kernel_suite.py; this
module is the exhaustive sweep across the whole suite at one width.
"""

import pytest

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.system.metrics import arrays_equal

from conftest import run_program

#: The heavyweights are exercised at reduced strength elsewhere; keep the
#: in-suite sweep under ~1 minute by skipping only the slowest simulation.
SWEEP = [name for name in BENCHMARK_ORDER if name != "179.art"]


@pytest.mark.parametrize("name", SWEEP)
def test_benchmark_liquid_matches_baseline_w16(name):
    kernel = build_kernel(name)
    # Correctness does not depend on how often the pattern repeats; trim
    # the schedule so the sweep stays fast (full-length runs are the
    # benchmark harness's job).
    kernel.repeats = min(kernel.repeats, 3)
    baseline = run_program(build_baseline_program(kernel))
    liquid = run_program(build_liquid_program(kernel), width=16)
    assert arrays_equal(baseline, liquid), name
    assert liquid.cycles < baseline.cycles, name


def test_art_liquid_matches_baseline_w16():
    kernel = build_kernel("179.art")
    # Trim the schedule for test-suite latency; correctness is unaffected.
    kernel.repeats = 2
    baseline = run_program(build_baseline_program(kernel))
    liquid = run_program(build_liquid_program(kernel), width=16)
    assert arrays_equal(baseline, liquid)


@pytest.mark.parametrize("name", ["FFT", "101.tomcatv", "172.mgrid",
                                  "093.nasa7", "MPEG2 Dec."])
def test_permutation_benchmarks_abort_cleanly_when_too_narrow(name):
    """Width-2 machines lack the wide permutations; loops stay scalar."""
    kernel = build_kernel(name)
    kernel.repeats = min(kernel.repeats, 2)
    baseline = run_program(build_baseline_program(kernel))
    liquid = run_program(build_liquid_program(kernel), width=2)
    assert arrays_equal(baseline, liquid), name
