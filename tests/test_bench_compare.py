"""Tests for the benchmark regression gate (`repro bench compare`).

Exercises the payload diff (:mod:`repro.observability.benchdiff`) and
the CLI's exit-code contract — 0 clean, 1 on regressions beyond
tolerance, 2 on unreadable input — which CI's ``bench-smoke`` job
depends on (see ``.github/workflows/ci.yml``).
"""

import json

import pytest

from repro.__main__ import main
from repro.observability.benchdiff import (
    collect_speedups,
    compare_payloads,
    render_comparison,
)


def payload(**speedups):
    """Minimal BENCH_*.json-shaped payload (benchmarks/conftest.py)."""
    return {"machine": {}, "records": {}, "speedups": speedups}


def kernel_payload(record, aggregate, **kernels):
    """Nested per-kernel payload, the BENCH_macro.json/BENCH_turbo.json
    shape: a record scalar plus a per-kernel speedup map."""
    return {
        "machine": {},
        "records": {record: {
            "speedup": aggregate,
            "turbo_fragment_seconds": 1.0,
            "macro_fragment_seconds": 1.0 / aggregate,
            "kernels": {name: {"speedup": value,
                               "turbo_seconds": 1.0,
                               "macro_seconds": 1.0 / value}
                        for name, value in kernels.items()},
        }},
        "speedups": {record: aggregate},
    }


class TestComparePayloads:
    def test_self_comparison_is_clean(self):
        p = payload(engine=2.5, turbo=2.2)
        cmp = compare_payloads(p, p)
        assert cmp.ok
        assert [d.status for d in cmp.deltas] == ["ok", "ok"]

    def test_slowdown_beyond_tolerance_regresses(self):
        cmp = compare_payloads(payload(engine=3.0),
                               payload(engine=2.3),  # -23%
                               tolerance=0.20)
        assert not cmp.ok
        assert cmp.deltas[0].status == "regression"

    def test_slowdown_within_tolerance_passes(self):
        cmp = compare_payloads(payload(engine=3.0), payload(engine=2.8),
                               tolerance=0.10)
        assert cmp.ok and cmp.deltas[0].status == "ok"

    def test_improvement_is_flagged_but_ok(self):
        cmp = compare_payloads(payload(engine=2.0), payload(engine=3.0))
        assert cmp.ok and cmp.deltas[0].status == "improved"

    def test_missing_record_is_a_regression(self):
        cmp = compare_payloads(payload(engine=2.0, turbo=2.0),
                               payload(engine=2.0))
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["turbo"]

    def test_added_record_is_informational(self):
        cmp = compare_payloads(payload(engine=2.0),
                               payload(engine=2.0, macro=2.2))
        assert cmp.ok
        assert {d.status for d in cmp.deltas} == {"ok", "added"}

    def test_rejects_malformed_payloads(self):
        with pytest.raises(ValueError, match="speedups"):
            compare_payloads({"records": {}}, payload(engine=1.0))
        with pytest.raises(ValueError, match="not numeric"):
            compare_payloads(payload(engine=1.0),
                             {"speedups": {"engine": "fast"}})
        with pytest.raises(ValueError, match="tolerance"):
            compare_payloads(payload(), payload(), tolerance=-1)

    def test_nested_kernel_speedups_are_collected(self):
        p = kernel_payload("macro_speedup", 2.2, FIR=3.1, LU=1.8)
        flat = collect_speedups(p)
        assert flat == {"macro_speedup": 2.2,
                        "macro_speedup/FIR": 3.1,
                        "macro_speedup/LU": 1.8}

    def test_nested_kernel_regression_is_caught(self):
        # The aggregate holds steady while one kernel tanks — the
        # failure mode a flat-speedups-only gate waves through.
        old = kernel_payload("macro_speedup", 2.2, FIR=3.1, LU=1.8)
        new = kernel_payload("macro_speedup", 2.2, FIR=3.1, LU=1.0)
        cmp = compare_payloads(old, new, tolerance=0.10)
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["macro_speedup/LU"]

    def test_removed_kernel_is_reported_not_skipped(self):
        old = kernel_payload("macro_speedup", 2.2, FIR=3.1, LU=1.8)
        new = kernel_payload("macro_speedup", 2.2, FIR=3.1)
        cmp = compare_payloads(old, new)
        assert not cmp.ok
        assert [(d.name, d.status) for d in cmp.regressions] == \
            [("macro_speedup/LU", "missing")]

    def test_added_kernel_is_informational(self):
        old = kernel_payload("macro_speedup", 2.2, FIR=3.1)
        new = kernel_payload("macro_speedup", 2.2, FIR=3.1, FFT=1.9)
        cmp = compare_payloads(old, new)
        assert cmp.ok
        added = [d for d in cmp.deltas if d.status == "added"]
        assert [d.name for d in added] == ["macro_speedup/FFT"]

    def test_records_without_speedups_map_still_compare(self):
        # BENCH payloads whose only speedups live inside records.
        p = kernel_payload("macro_speedup", 2.2, FIR=3.1)
        del p["speedups"]
        assert compare_payloads(p, p).ok

    def test_render_mentions_verdict_and_records(self):
        good = render_comparison(compare_payloads(payload(engine=2.0),
                                                  payload(engine=2.0)))
        assert "OK" in good and "engine" in good
        bad = render_comparison(compare_payloads(payload(engine=2.0),
                                                 payload(engine=1.0)))
        assert "FAIL" in bad and "engine" in bad


class TestCli:
    """`repro bench compare` exit codes, the CI gate's contract."""

    def _write(self, tmp_path, name, **speedups):
        path = tmp_path / name
        path.write_text(json.dumps(payload(**speedups)), encoding="utf-8")
        return str(path)

    def test_self_comparison_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "old.json", engine=2.48)
        assert main(["bench", "compare", base, base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, tmp_path, capsys):
        # The acceptance scenario: a synthetic >= 20% slowdown must fail
        # the gate even at a loose tolerance.
        base = self._write(tmp_path, "old.json", engine=2.50)
        slow = self._write(tmp_path, "new.json", engine=2.50 * 0.78)
        assert main(["bench", "compare", base, slow,
                     "--tolerance", "20"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path):
        base = self._write(tmp_path, "old.json", engine=2.50)
        slow = self._write(tmp_path, "new.json", engine=2.00)  # -20%
        assert main(["bench", "compare", base, slow,
                     "--tolerance", "30"]) == 0
        assert main(["bench", "compare", base, slow,
                     "--tolerance", "10"]) == 1

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path, "old.json", engine=2.0)
        missing = str(tmp_path / "nope.json")
        assert main(["bench", "compare", base, missing]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json", encoding="utf-8")
        assert main(["bench", "compare", base, str(garbage)]) == 2
        capsys.readouterr()

    def test_json_output_round_trips(self, tmp_path, capsys):
        base = self._write(tmp_path, "old.json", engine=2.0, turbo=2.5)
        assert main(["bench", "compare", base, base, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert {r["name"] for r in report["records"]} == {"engine", "turbo"}
