"""Property tests: generation-stamp LRU vs. list-based true LRU.

``memory/cache.py`` implements replacement with generation stamps (a
monotonic counter per access; eviction removes the minimum-stamp line)
instead of the textbook recency list.  Because stamps are strictly
increasing, the min-stamp line *is* the least-recently-used line, so the
two implementations must agree on everything observable: every
hit/miss/writeback counter, every eviction victim, and the full
LRU-ordered residency of every set.  This suite drives both models with
the same random access streams over random geometries and checks
exactly that.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


class ListLRUCache:
    """The textbook model: per-set recency list, LRU at index 0.

    Tracks the same statistics as :class:`Cache` and records every
    eviction victim, so the generation-stamp implementation can be
    checked decision-for-decision.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0
        self.writebacks = 0
        self.victims = []  # (set_index, tag) in eviction order
        self._sets = [[] for _ in range(config.num_sets)]
        self._dirty = [set() for _ in range(config.num_sets)]

    def access(self, addr: int, nbytes: int = 4,
               is_write: bool = False) -> int:
        line_bytes = self.config.line_bytes
        first = addr // line_bytes
        last = (addr + max(nbytes, 1) - 1) // line_bytes
        cycles = 0
        for line_number in range(first, last + 1):
            cycles += self._access_line(line_number, is_write)
        return cycles

    def _access_line(self, line_number: int, is_write: bool) -> int:
        num_sets = self.config.num_sets
        tag = line_number // num_sets
        set_index = line_number % num_sets
        ways = self._sets[set_index]
        dirty = self._dirty[set_index]
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        if tag in ways:
            ways.remove(tag)           # O(assoc) splice: the cost the
            ways.append(tag)           # generation-stamp scheme avoids
            if is_write:
                dirty.add(tag)
            return self.config.hit_latency
        if is_write:
            self.write_misses += 1
        else:
            self.read_misses += 1
        if len(ways) >= self.config.assoc:
            victim = ways.pop(0)
            self.victims.append((set_index, victim))
            if victim in dirty:
                dirty.remove(victim)
                self.writebacks += 1
        ways.append(tag)
        if is_write:
            dirty.add(tag)
        return self.config.hit_latency + self.config.miss_penalty

    def resident(self, set_index: int):
        return tuple(self._sets[set_index])


def _drive(config: CacheConfig, stream) -> None:
    """Run *stream* through both models, asserting lock-step agreement."""
    real = Cache(config)
    model = ListLRUCache(config)
    for addr, nbytes, is_write in stream:
        assert real.access(addr, nbytes, is_write) == \
            model.access(addr, nbytes, is_write)
    stats = real.stats
    assert stats.reads == model.reads
    assert stats.writes == model.writes
    assert stats.read_misses == model.read_misses
    assert stats.write_misses == model.write_misses
    assert stats.writebacks == model.writebacks
    # Identical victims implies identical final residency — checking the
    # LRU-ordered residency of every set pins the victim sequence too
    # (the next victim is always the head of this ordering).
    for set_index in range(config.num_sets):
        assert real.resident(set_index) == model.resident(set_index), \
            f"set {set_index} diverged"


def _random_stream(rng: random.Random, config: CacheConfig, length: int):
    # Concentrate addresses so sets fill up and evictions are common.
    span = config.size_bytes * 3
    stream = []
    for _ in range(length):
        addr = rng.randrange(span)
        nbytes = rng.choice((1, 2, 4, 8, config.line_bytes,
                             config.line_bytes * 2))
        stream.append((addr, nbytes, rng.random() < 0.4))
    return stream


GEOMETRIES = st.tuples(
    st.sampled_from((1, 2, 4, 8)),        # assoc
    st.sampled_from((16, 32, 64)),        # line_bytes
    st.sampled_from((1, 2, 4, 8)),        # num_sets
)


@given(geometry=GEOMETRIES, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_gen_stamp_matches_list_lru(geometry, seed):
    assoc, line_bytes, num_sets = geometry
    config = CacheConfig(size_bytes=assoc * line_bytes * num_sets,
                         assoc=assoc, line_bytes=line_bytes,
                         hit_latency=1, miss_penalty=30)
    rng = random.Random(seed)
    _drive(config, _random_stream(rng, config, 300))


@pytest.mark.parametrize("seed", range(5))
def test_default_geometry_long_streams(seed):
    """The shipped ARM-926EJ-S geometry (16 KB, 64-way) under pressure."""
    config = CacheConfig()
    rng = random.Random(seed)
    _drive(config, _random_stream(rng, config, 4000))


def test_eviction_victim_is_lru():
    """Directed check: fill a set, touch the oldest line, evict — the
    victim must be the *second*-oldest line, proving recency (not
    insertion order) drives eviction."""
    config = CacheConfig(size_bytes=2 * 32, assoc=2, line_bytes=32)
    assert config.num_sets == 1
    cache = Cache(config)
    model = ListLRUCache(config)
    # tags 0 and 1 fill the set; re-touch tag 0; tag 2 must evict tag 1.
    for addr, write in ((0, True), (32, False), (0, False), (64, False)):
        cache.access(addr, 4, write)
        model.access(addr, 4, write)
    assert cache.resident(0) == model.resident(0) == (0, 2)
    assert model.victims == [(0, 1)]
    # tag 1 was dirty? no — it was a read; tag 0's dirtiness survives.
    assert cache.stats.writebacks == model.writebacks == 0
    # Evict tag 0 (dirty): touch 2 then a new tag; writeback must fire.
    cache.access(64, 4, False)
    model.access(64, 4, False)
    cache.access(96, 4, False)
    model.access(96, 4, False)
    assert cache.stats.writebacks == model.writebacks == 1
    assert cache.resident(0) == model.resident(0)
