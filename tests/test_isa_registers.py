"""Unit tests for register naming, banks, and the register file."""

import pytest

from repro.isa import registers as R


class TestNaming:
    def test_int_reg_names(self):
        assert R.int_reg(0) == "r0"
        assert R.int_reg(15) == "r15"

    def test_float_reg_names(self):
        assert R.float_reg(3) == "f3"

    def test_int_reg_out_of_range(self):
        with pytest.raises(ValueError):
            R.int_reg(16)
        with pytest.raises(ValueError):
            R.float_reg(-1)

    def test_bank_predicates(self):
        assert R.is_int_reg("r7")
        assert not R.is_int_reg("f7")
        assert R.is_float_reg("f7")
        assert R.is_scalar_reg("r7") and R.is_scalar_reg("f7")
        assert not R.is_scalar_reg("v7")
        assert R.is_vector_reg("v7") and R.is_vector_reg("vf7")
        assert not R.is_vector_reg("r7")

    def test_reg_index(self):
        assert R.reg_index("r12") == 12
        assert R.reg_index("f0") == 0
        assert R.reg_index("v5") == 5
        assert R.reg_index("vf11") == 11

    def test_reg_index_rejects_garbage(self):
        for bad in ("x3", "r", "vfx", "r16", "v99"):
            with pytest.raises(ValueError):
                R.reg_index(bad)

    def test_vector_mapping_is_index_preserving(self):
        assert R.vector_reg_for("r3") == "v3"
        assert R.vector_reg_for("f3") == "vf3"

    def test_vector_mapping_roundtrip(self):
        for i in range(16):
            assert R.scalar_reg_for(R.vector_reg_for(f"r{i}")) == f"r{i}"
            assert R.scalar_reg_for(R.vector_reg_for(f"f{i}")) == f"f{i}"

    def test_vector_reg_for_rejects_vectors(self):
        with pytest.raises(ValueError):
            R.vector_reg_for("v3")

    def test_link_register_is_r14(self):
        assert R.LINK_REGISTER == "r14"


class TestRegisterFile:
    def test_initial_values_are_zero(self):
        rf = R.RegisterFile()
        assert rf.read("r5") == 0
        assert rf.read("f5") == 0.0

    def test_write_read_int(self):
        rf = R.RegisterFile()
        rf.write("r1", 42)
        assert rf.read("r1") == 42

    def test_int_wraps_to_signed_32(self):
        rf = R.RegisterFile()
        rf.write("r1", 0x80000000)
        assert rf.read("r1") == -(1 << 31)
        rf.write("r1", 0xFFFFFFFF)
        assert rf.read("r1") == -1
        rf.write("r1", 1 << 32)
        assert rf.read("r1") == 0

    def test_write_read_float(self):
        rf = R.RegisterFile()
        rf.write("f2", 1.5)
        assert rf.read("f2") == 1.5

    def test_unknown_register_raises(self):
        rf = R.RegisterFile()
        with pytest.raises(KeyError):
            rf.read("v2")
        with pytest.raises(KeyError):
            rf.write("zz", 1)

    def test_flags(self):
        rf = R.RegisterFile()
        rf.set_flags(1, 2)
        assert rf.flag("lt") and not rf.flag("eq") and not rf.flag("gt")
        rf.set_flags(2, 2)
        assert rf.flag("eq") and not rf.flag("lt")
        rf.set_flags(3, 2)
        assert rf.flag("gt")

    def test_snapshot_contains_both_banks(self):
        rf = R.RegisterFile()
        rf.write("r3", 7)
        rf.write("f4", 2.5)
        snap = rf.snapshot()
        assert snap["r3"] == 7
        assert snap["f4"] == 2.5
        assert len(snap) == 32


class TestWrapHelpers:
    def test_wrap32(self):
        assert R.wrap32(0x7FFFFFFF) == 0x7FFFFFFF
        assert R.wrap32(0x80000000) == -(1 << 31)

    def test_unsigned32(self):
        assert R.unsigned32(-1) == 0xFFFFFFFF
        assert R.unsigned32(5) == 5
