"""Tests for the body-deepening helpers (register-neutral, range-safe)."""

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.core.scalarize.loop_ir import Kernel
from repro.isa.program import DataArray
from repro.kernels.depth import deepen_float, deepen_int
from repro.kernels.dsl import LoopBuilder
from repro.system.metrics import arrays_equal

from conftest import run_program


def _float_kernel(depth: int) -> Kernel:
    b = LoopBuilder("hot", trip=32, elem="f32")
    x = b.load("x")
    y = b.load("y")
    v = b.add(x, y)
    v = deepen_float(b, v, [x, y], depth)
    b.store("out", v)
    return Kernel("k", arrays=[
        DataArray("x", "f32", [0.1 * (i % 7) for i in range(32)]),
        DataArray("y", "f32", [0.05 * (i % 5) for i in range(32)]),
        DataArray("out", "f32", [0.0] * 32),
    ], stages=[b.build()], schedule=["hot"], repeats=3)


def _int_kernel(depth: int) -> Kernel:
    b = LoopBuilder("hot", trip=32, elem="i16")
    x = b.load("x")
    y = b.load("y")
    v = b.qadd(x, y)
    v = deepen_int(b, v, [x, y], depth)
    b.store("out", v)
    return Kernel("k", arrays=[
        DataArray("x", "i16", [(i * 31) % 200 - 100 for i in range(32)]),
        DataArray("y", "i16", [(i * 17) % 200 - 100 for i in range(32)]),
        DataArray("out", "i16", [0] * 32),
    ], stages=[b.build()], schedule=["hot"], repeats=3)


class TestRegisterNeutrality:
    def test_float_chain_allocates_one_register(self):
        b = LoopBuilder("hot", trip=8, elem="f32")
        x = b.load("x")
        before = b._next_index
        deepen_float(b, x, [x], 25)
        assert b._next_index == before  # fully in-place

    def test_int_chain_allocates_no_registers(self):
        b = LoopBuilder("hot", trip=8, elem="i16")
        x = b.load("x")
        before = b._next_index
        deepen_int(b, x, [x], 25)
        assert b._next_index == before

    def test_chain_length_matches_request(self):
        b = LoopBuilder("hot", trip=8, elem="f32")
        x = b.load("x")
        start = len(b._body)
        deepen_float(b, x, [x], 17)
        assert len(b._body) == start + 17


class TestDeepenedCorrectness:
    def test_float_chain_translates_exactly(self):
        kernel = _float_kernel(20)
        base = run_program(build_baseline_program(kernel))
        liquid = run_program(build_liquid_program(kernel), width=8)
        assert arrays_equal(base, liquid)
        assert liquid.successful_translations == 1

    def test_int_chain_translates_exactly(self):
        kernel = _int_kernel(9)
        base = run_program(build_baseline_program(kernel))
        liquid = run_program(build_liquid_program(kernel), width=8)
        assert arrays_equal(base, liquid)
        assert liquid.successful_translations == 1

    def test_float_values_stay_bounded(self):
        kernel = _float_kernel(40)
        result = run_program(build_baseline_program(kernel))
        assert all(abs(v) < 1e6 for v in result.arrays["out"])

    def test_int_values_stay_in_lane_range(self):
        kernel = _int_kernel(15)
        result = run_program(build_baseline_program(kernel))
        assert all(-32768 <= v <= 32767 for v in result.arrays["out"])
