"""Unit tests for the in-order timing model and branch predictors."""

from repro.interp.events import RetireEvent
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym
from repro.memory.cache import CacheConfig
from repro.pipeline.branch import BimodalPredictor, StaticPredictor
from repro.pipeline.core import PipelineConfig, PipelineModel
from repro.pipeline.latencies import RESULT_LATENCY, result_latency
from repro.isa.opcodes import InstrClass


def _event(instr, pc=0, taken=False, next_pc=None, mem_addr=None,
           in_vector_unit=False, vector_width=None):
    return RetireEvent(pc=pc, instr=instr, taken=taken,
                       next_pc=next_pc if next_pc is not None else pc + 1,
                       mem_addr=mem_addr, in_vector_unit=in_vector_unit,
                       vector_width=vector_width)


def _model(**kw) -> PipelineModel:
    # Zero-latency caches by default keep the arithmetic legible.
    config = PipelineConfig(
        icache=CacheConfig(miss_penalty=kw.pop("imiss", 0)),
        dcache=CacheConfig(miss_penalty=kw.pop("dmiss", 0)),
        **kw,
    )
    return PipelineModel(config)


ADD = Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Reg("r3")))
MUL = Instruction("mul", dst=Reg("r4"), srcs=(Reg("r1"), Reg("r1")))
NOP = Instruction("nop")


class TestIssueRules:
    def test_single_issue_one_per_cycle(self):
        model = _model()
        issues = [model.account(_event(NOP, pc=i)) for i in range(5)]
        assert issues == [1, 2, 3, 4, 5]

    def test_dependent_instruction_waits_for_latency(self):
        model = _model()
        t0 = model.account(_event(ADD, pc=0))           # r1 ready at t0+1
        t1 = model.account(_event(MUL, pc=1))            # reads r1
        assert t1 == t0 + 1
        # mul result latency is 2: a dependent add stalls one extra cycle.
        dep = Instruction("add", dst=Reg("r5"), srcs=(Reg("r4"), Imm(1)))
        t2 = model.account(_event(dep, pc=2))
        assert t2 == t1 + RESULT_LATENCY[InstrClass.MUL]
        assert model.stats.data_stall_cycles >= 1

    def test_independent_instructions_do_not_stall(self):
        model = _model()
        a = Instruction("add", dst=Reg("r1"), srcs=(Reg("r2"), Imm(1)))
        b = Instruction("add", dst=Reg("r3"), srcs=(Reg("r4"), Imm(1)))
        t0 = model.account(_event(a, pc=0))
        t1 = model.account(_event(b, pc=1))
        assert t1 == t0 + 1

    def test_flags_create_dependences(self):
        model = _model()
        cmp = Instruction("cmp", srcs=(Reg("r1"), Imm(0)))
        mov = Instruction("movgt", dst=Reg("r2"), srcs=(Imm(1),))
        t0 = model.account(_event(cmp, pc=0))
        t1 = model.account(_event(mov, pc=1))
        assert t1 == t0 + 1  # back-to-back is fine (1-cycle flag latency)

    def test_total_cycles_includes_drain(self):
        model = _model()
        model.account(_event(NOP))
        assert model.total_cycles() >= model.now + 4


class TestMemoryTiming:
    def test_load_miss_then_hit(self):
        model = _model(dmiss=20)
        ld = Instruction("ldw", dst=Reg("r1"),
                         mem=Mem(base=Sym("A"), index=Reg("r0")), elem="i32")
        use = Instruction("add", dst=Reg("r2"), srcs=(Reg("r1"), Imm(1)))
        model.account(_event(ld, pc=0, mem_addr=0x1000))
        t1 = model.account(_event(use, pc=1))
        assert model.stats.load_miss_cycles == 20
        assert t1 > 2  # stalled on the miss
        # Second load to the same line hits.
        model.account(_event(ld, pc=2, mem_addr=0x1004))
        assert model.stats.load_miss_cycles == 20

    def test_store_updates_cache_without_stalling(self):
        model = _model(dmiss=20)
        st = Instruction("stw", srcs=(Reg("r1"),),
                         mem=Mem(base=Sym("A"), index=Reg("r0")), elem="i32")
        t0 = model.account(_event(st, pc=0, mem_addr=0x2000))
        t1 = model.account(_event(NOP, pc=1))
        assert t1 == t0 + 1  # write buffer hides the miss
        assert model.dcache.stats.writes == 1

    def test_vector_load_charges_full_footprint(self):
        model = _model(dmiss=20)
        vld = Instruction("vld", dst=Reg("vf0"),
                          mem=Mem(base=Sym("A"), index=Reg("r0")), elem="f32")
        # 16 lanes x 4 bytes = 64 bytes = 2 lines -> 2 misses.
        model.account(_event(vld, pc=0, mem_addr=0x3000, vector_width=16))
        assert model.dcache.stats.read_misses == 2

    def test_icache_fetch_stall(self):
        model = _model(imiss=10)
        model.account(_event(NOP, pc=0))
        assert model.stats.fetch_stall_cycles == 10
        model.account(_event(NOP, pc=1))  # same line: no new stall
        assert model.stats.fetch_stall_cycles == 10

    def test_microcode_injection_skips_icache(self):
        model = _model(imiss=10)
        model.account(_event(NOP, pc=0, in_vector_unit=True))
        assert model.stats.fetch_stall_cycles == 0
        assert model.icache.stats.accesses == 0


class TestControlFlow:
    def test_backward_taken_branch_predicted(self):
        model = _model()
        branch = Instruction("blt", target="loop")
        for i in range(10):
            model.account(_event(NOP, pc=5))
            model.account(_event(branch, pc=6, taken=True, next_pc=5))
        # Static backward-taken bias: the loop branch never mispredicts.
        assert model.stats.mispredicts == 0

    def test_final_not_taken_mispredicts_once(self):
        model = _model()
        branch = Instruction("blt", target="loop")
        for _ in range(5):
            model.account(_event(branch, pc=6, taken=True, next_pc=5))
        model.account(_event(branch, pc=6, taken=False, next_pc=7))
        assert model.stats.mispredicts == 1
        assert model.stats.branch_penalty_cycles >= 2

    def test_call_redirect_penalty(self):
        model = _model()
        call = Instruction("bl", target="fn")
        model.account(_event(call, pc=0, taken=True, next_pc=50))
        before = model.now
        model.account(_event(NOP, pc=50))
        assert model.now >= before + 1 + model.config.call_redirect_penalty

    def test_simd_instructions_counted(self):
        model = _model()
        v = Instruction("vadd", dst=Reg("v1"), srcs=(Reg("v2"), Reg("v3")),
                        elem="i32")
        model.account(_event(v, in_vector_unit=True, vector_width=8))
        assert model.stats.simd_instructions == 1


class TestPredictors:
    def test_static(self):
        p = StaticPredictor()
        assert p.predict(10, 5)       # backward -> taken
        assert not p.predict(10, 20)  # forward -> not taken
        p.update(10, True)            # no-op

    def test_bimodal_learns_taken(self):
        p = BimodalPredictor(entries=16)
        for _ in range(4):
            p.update(3, True)
        assert p.predict(3, 100)  # learned taken even for forward target

    def test_bimodal_learns_not_taken(self):
        p = BimodalPredictor(entries=16)
        for _ in range(4):
            p.update(3, False)
        assert not p.predict(3, 0)

    def test_bimodal_cold_backward_bias(self):
        p = BimodalPredictor(entries=16)
        assert p.predict(9, 2)

    def test_bimodal_rejects_bad_size(self):
        import pytest
        with pytest.raises(ValueError):
            BimodalPredictor(entries=0)


class TestLatencies:
    def test_all_classes_covered(self):
        for cls in InstrClass:
            assert result_latency(cls) >= 1

    def test_relative_ordering(self):
        assert RESULT_LATENCY[InstrClass.FDIV] > RESULT_LATENCY[InstrClass.FMUL]
        assert RESULT_LATENCY[InstrClass.MUL] > RESULT_LATENCY[InstrClass.ALU]
