"""External-oracle tests: the simulator vs. independent NumPy math.

Everything else in the suite checks that the execution paths agree with
*each other*.  These tests close the loop externally: for representative
hot loops, the expected memory contents are computed directly in NumPy
(float32 arithmetic, saturating integer semantics) and compared with the
simulated baseline run — so a systematic error shared by all simulator
paths cannot hide.
"""

import numpy as np
import pytest

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.kernels.suite import build_kernel

from conftest import run_program


def _arrays(kernel):
    return {arr.name: arr for arr in kernel.arrays}


def _f32(values):
    return np.asarray(values, dtype=np.float32)


class TestFirOracle:
    def test_fir_products_and_dot(self):
        kernel = build_kernel("FIR")
        data = _arrays(kernel)
        x = _f32(data["fir_x"].values)
        h = _f32(data["fir_h"].values)
        result = run_program(build_baseline_program(kernel))

        expected = x * h
        np.testing.assert_array_equal(
            _f32(result.arrays["fir_scaled"]), expected)
        # Reduction folds lanes strictly in order at float32 precision.
        acc = np.float32(0.0)
        for value in expected:
            acc = np.float32(acc + value)
        assert np.float32(result.arrays["fir_out"][0]) == acc


class TestLuOracle:
    def test_elimination_rows(self):
        kernel = build_kernel("LU")
        data = _arrays(kernel)
        pivot = _f32(data["lu_pivot"].values)
        factors = (0.25, 0.5, 0.125, 0.75)
        result = run_program(build_baseline_program(kernel))
        for step, factor in enumerate(factors):
            row = _f32(data[f"lu_row{step}"].values)
            for _ in range(kernel.repeats):
                row = np.float32(row - np.float32(pivot * np.float32(factor)))
            np.testing.assert_array_equal(
                _f32(result.arrays[f"lu_row{step}"]), row)


class TestAlvinnOracle:
    def test_clipped_activation(self):
        kernel = build_kernel("052.alvinn")
        data = _arrays(kernel)
        hidden = _f32(data["alv_hidden"].values)
        result = run_program(build_baseline_program(kernel))
        scaled = np.float32(hidden * np.float32(0.5)) + np.float32(0.25)
        clipped = np.minimum(np.maximum(np.float32(scaled),
                                        np.float32(-1.0)), np.float32(1.0))
        np.testing.assert_array_equal(_f32(result.arrays["alv_out"]),
                                      clipped)


class TestSaturationOracle:
    def test_mpeg2_prediction_add_saturates(self):
        kernel = build_kernel("MPEG2 Dec.")
        data = _arrays(kernel)
        result = run_program(build_baseline_program(kernel))

        blk = np.asarray(data["md_blk"].values, dtype=np.int32)
        pred = np.asarray(data["md_pred"].values, dtype=np.int32)
        # IDCT row pass: rev4 within groups, t = (5*blk + mirrored) >> 3.
        mirrored = blk.reshape(-1, 4)[:, ::-1].reshape(-1)
        row = (5 * blk + mirrored) >> 3
        np.testing.assert_array_equal(
            np.asarray(result.arrays["md_row"], dtype=np.int32), row)
        pix = np.clip(pred + row, -32768, 32767)
        np.testing.assert_array_equal(
            np.asarray(result.arrays["md_pix"], dtype=np.int32), pix)

    def test_gsm_encode_amax(self):
        kernel = build_kernel("GSM Enc.")
        data = _arrays(kernel)
        result = run_program(build_baseline_program(kernel))
        samples = np.asarray(data["ge_s"].values, dtype=np.int32)
        assert result.arrays["ge_amax"][0] == int(np.max(np.abs(samples)))


class TestOracleAgainstTranslatedExecution:
    """The oracle must hold for the *translated* path too."""

    @pytest.mark.parametrize("width", [4, 8])
    def test_fir_translated_matches_numpy(self, width):
        kernel = build_kernel("FIR")
        data = _arrays(kernel)
        x = _f32(data["fir_x"].values)
        h = _f32(data["fir_h"].values)
        result = run_program(build_liquid_program(kernel), width=width)
        np.testing.assert_array_equal(_f32(result.arrays["fir_scaled"]),
                                      x * h)

    def test_mpeg2_translated_matches_numpy(self):
        kernel = build_kernel("MPEG2 Dec.")
        data = _arrays(kernel)
        result = run_program(build_liquid_program(kernel), width=8)
        blk = np.asarray(data["md_blk"].values, dtype=np.int32)
        mirrored = blk.reshape(-1, 4)[:, ::-1].reshape(-1)
        row = (5 * blk + mirrored) >> 3
        np.testing.assert_array_equal(
            np.asarray(result.arrays["md_row"], dtype=np.int32), row)
